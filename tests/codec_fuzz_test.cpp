// Hostile-input robustness: every wire decoder must reject (never crash,
// never throw, never over-read) arbitrary and corrupted byte strings. The
// attacker controls the network, so these decoders are the first code that
// touches attacker bytes.
//
// The *Differential* tests below additionally pin the zero-copy decoder to
// the legacy one: every input — random, bit-flipped, truncated — is fed to
// BOTH Message::decode and MessageView::decode, and the accept/reject
// verdict plus every decoded field must agree exactly (>= 50k trials across
// the suite). Each differential input is decoded from an exactly-sized heap
// allocation, so one CI run under -DFORTRESS_SANITIZE=address turns any
// out-of-span read by the view into a hard failure.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "core/directory.hpp"
#include "osl/probe.hpp"
#include "replication/message.hpp"

namespace fortress {
namespace {

Bytes random_bytes(Rng& rng, std::size_t len) {
  Bytes out(len);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

// True iff `view` (over `n` bytes at `base`) lies entirely inside the input
// allocation. Empty views pass wherever they point (nothing is read).
bool within(BytesView view, const std::uint8_t* base, std::size_t n) {
  if (view.empty()) return true;
  return view.data() >= base && view.data() + view.size() <= base + n;
}

// Feed one input to both decoders from an exactly-sized heap copy; the
// verdicts and every field must agree, and every borrowed span must stay
// inside the copy.
void expect_decoders_agree(BytesView input) {
  auto exact = std::make_unique<std::uint8_t[]>(input.size());
  std::copy(input.begin(), input.end(), exact.get());
  const BytesView data(exact.get(), input.size());

  const auto legacy = replication::Message::decode(data);
  const auto view = replication::MessageView::decode(data);
  ASSERT_EQ(legacy.has_value(), view.has_value())
      << "decoders disagree on acceptance (input size " << data.size() << ")";
  if (!legacy) return;

  EXPECT_EQ(legacy->type, view->type());
  EXPECT_EQ(legacy->view, view->view());
  EXPECT_EQ(legacy->seq, view->seq());
  EXPECT_EQ(legacy->sender_index, view->sender_index());
  EXPECT_EQ(legacy->request_id.client, view->request_client());
  EXPECT_EQ(legacy->request_id.seq, view->request_seq());
  EXPECT_EQ(legacy->requester, view->requester());
  EXPECT_TRUE(std::equal(legacy->payload.begin(), legacy->payload.end(),
                         view->payload().begin(), view->payload().end()));
  EXPECT_TRUE(std::equal(legacy->aux.begin(), legacy->aux.end(),
                         view->aux().begin(), view->aux().end()));
  ASSERT_EQ(legacy->signature.has_value(), view->signature().has_value());
  if (legacy->signature) {
    EXPECT_EQ(*legacy->signature, view->signature()->materialize());
  }
  ASSERT_EQ(legacy->over_signature.has_value(),
            view->over_signature().has_value());
  if (legacy->over_signature) {
    EXPECT_EQ(*legacy->over_signature, view->over_signature()->materialize());
  }

  // Borrowed spans never leave the input allocation.
  const std::uint8_t* base = exact.get();
  EXPECT_TRUE(within(view->payload(), base, data.size()));
  EXPECT_TRUE(within(view->aux(), base, data.size()));
  auto sv_within = [&](std::string_view s) {
    return s.empty() ||
           (reinterpret_cast<const std::uint8_t*>(s.data()) >= base &&
            reinterpret_cast<const std::uint8_t*>(s.data()) + s.size() <=
                base + data.size());
  };
  EXPECT_TRUE(sv_within(view->request_client()));
  EXPECT_TRUE(sv_within(view->requester()));
  if (view->signature()) {
    EXPECT_TRUE(sv_within(view->signature()->signer));
    EXPECT_TRUE(within(view->signature()->tag, base, data.size()));
  }

  // The materialized view is the legacy record, bit for bit, and the
  // spliced signing bytes match the re-encoding ones.
  EXPECT_EQ(view->materialize().encode(), legacy->encode());
  EXPECT_EQ(view->signing_bytes(), legacy->signing_bytes());
}

// A pool of structurally diverse valid messages for mutation fuzzing.
std::vector<Bytes> valid_wires() {
  std::vector<Bytes> wires;
  crypto::KeyRegistry registry(77);
  crypto::SigningKey server = registry.enroll("server-0");
  crypto::SigningKey proxy = registry.enroll("proxy-0");

  replication::Message m;
  wires.push_back(m.encode());  // all defaults

  m.type = replication::MsgType::StateUpdate;
  m.view = 7;
  m.seq = 9;
  m.sender_index = 2;
  m.request_id = {"client-a", 3};
  m.requester = "proxy-0";
  m.payload = bytes_of("payload");
  m.aux = bytes_of("snapshot-bytes");
  wires.push_back(m.encode());

  replication::sign_message(m, server);
  wires.push_back(m.encode());

  m.type = replication::MsgType::ProxyResponse;
  m.signature.reset();
  replication::sign_message(m, server);
  replication::over_sign_message(m, proxy);
  wires.push_back(m.encode());

  replication::Message empty_fields;
  empty_fields.type = replication::MsgType::PrepareAck;
  empty_fields.aux = Bytes(64, 0xcd);
  wires.push_back(empty_fields.encode());
  return wires;
}

TEST(CodecFuzzTest, DifferentialRandomBytes) {
  Rng rng(11);
  for (int trial = 0; trial < 25000; ++trial) {
    std::size_t len = static_cast<std::size_t>(rng.below(250));
    Bytes junk = random_bytes(rng, len);
    expect_decoders_agree(junk);
    if (HasFatalFailure()) return;
  }
}

TEST(CodecFuzzTest, DifferentialBitFlips) {
  const std::vector<Bytes> wires = valid_wires();
  Rng rng(12);
  for (int trial = 0; trial < 20000; ++trial) {
    Bytes corrupted = wires[trial % wires.size()];
    int flips = 1 + static_cast<int>(rng.below(8));
    for (int f = 0; f < flips; ++f) {
      std::size_t pos = static_cast<std::size_t>(rng.below(corrupted.size()));
      corrupted[pos] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    }
    expect_decoders_agree(corrupted);
    if (HasFatalFailure()) return;
  }
}

TEST(CodecFuzzTest, DifferentialTruncationsAndExtensions) {
  const std::vector<Bytes> wires = valid_wires();
  // Every prefix of every pool wire (the classic truncation sweep) ...
  for (const Bytes& wire : wires) {
    for (std::size_t cut = 0; cut <= wire.size(); ++cut) {
      expect_decoders_agree(BytesView(wire.data(), cut));
      if (HasFatalFailure()) return;
    }
  }
  // ... plus random truncate-then-mutate and trailing-garbage variants.
  Rng rng(13);
  for (int trial = 0; trial < 10000; ++trial) {
    Bytes base = wires[trial % wires.size()];
    if (rng.below(2) == 0) {
      base.resize(static_cast<std::size_t>(rng.below(base.size() + 1)));
    } else {
      Bytes extra = random_bytes(rng, 1 + static_cast<std::size_t>(rng.below(16)));
      base.insert(base.end(), extra.begin(), extra.end());
    }
    if (!base.empty() && rng.below(2) == 0) {
      base[static_cast<std::size_t>(rng.below(base.size()))] =
          static_cast<std::uint8_t>(rng.below(256));
    }
    expect_decoders_agree(base);
    if (HasFatalFailure()) return;
  }
}

TEST(CodecFuzzTest, DifferentialLengthFieldAttacks) {
  // Huge big-endian length fields written at every offset of a valid wire:
  // both decoders must reject (or accept) identically without over-reading.
  const std::vector<Bytes> wires = valid_wires();
  for (const Bytes& wire : wires) {
    for (std::size_t pos = 0; pos + 8 <= wire.size(); ++pos) {
      Bytes evil = wire;
      for (int i = 0; i < 8; ++i) {
        evil[pos + static_cast<std::size_t>(i)] = 0xff;
      }
      expect_decoders_agree(evil);
      if (HasFatalFailure()) return;
    }
  }
}

TEST(CodecFuzzTest, MessageDecodeSurvivesRandomBytes) {
  Rng rng(1);
  for (int trial = 0; trial < 20000; ++trial) {
    std::size_t len = static_cast<std::size_t>(rng.below(200));
    Bytes junk = random_bytes(rng, len);
    EXPECT_NO_THROW({ auto r = replication::Message::decode(junk); (void)r; });
  }
}

TEST(CodecFuzzTest, MessageDecodeSurvivesBitFlips) {
  // Start from a VALID message and flip random bits: decode either fails
  // cleanly or round-trips to something self-consistent; it never throws.
  replication::Message msg;
  msg.type = replication::MsgType::StateUpdate;
  msg.view = 7;
  msg.seq = 9;
  msg.request_id = {"client", 3};
  msg.requester = "proxy-0";
  msg.payload = bytes_of("payload");
  msg.aux = bytes_of("snapshot");
  Bytes wire = msg.encode();

  Rng rng(2);
  for (int trial = 0; trial < 20000; ++trial) {
    Bytes corrupted = wire;
    int flips = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < flips; ++f) {
      std::size_t pos = static_cast<std::size_t>(rng.below(corrupted.size()));
      corrupted[pos] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    }
    EXPECT_NO_THROW({
      auto r = replication::Message::decode(corrupted);
      if (r) {
        // If it decoded, re-encoding must be stable (no partial reads).
        auto again = replication::Message::decode(r->encode());
        EXPECT_TRUE(again.has_value());
      }
    });
  }
}

TEST(CodecFuzzTest, MessageDecodeSurvivesLengthFieldAttacks) {
  // Craft messages whose length fields claim more data than exists.
  Rng rng(3);
  replication::Message msg;
  msg.payload = bytes_of("xxxxxxxx");
  Bytes wire = msg.encode();
  for (std::size_t pos = 0; pos + 8 <= wire.size(); ++pos) {
    Bytes evil = wire;
    // Write a huge big-endian length at every offset.
    for (int i = 0; i < 8; ++i) evil[pos + static_cast<std::size_t>(i)] = 0xff;
    EXPECT_NO_THROW({ auto r = replication::Message::decode(evil); (void)r; });
  }
}

TEST(CodecFuzzTest, DirectoryDecodeSurvivesRandomBytes) {
  Rng rng(4);
  for (int trial = 0; trial < 20000; ++trial) {
    Bytes junk = random_bytes(rng, static_cast<std::size_t>(rng.below(128)));
    EXPECT_NO_THROW({ auto r = core::Directory::decode(junk); (void)r; });
  }
}

TEST(CodecFuzzTest, ProbeScannerSurvivesRandomBytes) {
  Rng rng(5);
  for (int trial = 0; trial < 20000; ++trial) {
    Bytes junk = random_bytes(rng, static_cast<std::size_t>(rng.below(64)));
    EXPECT_NO_THROW({
      (void)osl::decode_probe(junk);
      (void)osl::probe_inside_request(junk);
      (void)osl::is_owned_ack(junk);
    });
  }
}

TEST(CodecFuzzTest, SignedFuzzNeverVerifies) {
  // No random mutation of a signed message may still verify: 20k trials of
  // 1-3 byte-level corruptions on a signed response.
  crypto::KeyRegistry registry(9);
  crypto::SigningKey key = registry.enroll("server-0");
  replication::Message msg;
  msg.type = replication::MsgType::Response;
  msg.request_id = {"client", 1};
  msg.payload = bytes_of("result");
  replication::sign_message(msg, key);
  Bytes wire = msg.encode();

  Rng rng(6);
  int verified_mutants = 0;
  for (int trial = 0; trial < 20000; ++trial) {
    Bytes corrupted = wire;
    int edits = 1 + static_cast<int>(rng.below(3));
    bool changed = false;
    for (int e = 0; e < edits; ++e) {
      std::size_t pos = static_cast<std::size_t>(rng.below(corrupted.size()));
      std::uint8_t nv = static_cast<std::uint8_t>(rng.below(256));
      if (corrupted[pos] != nv) changed = true;
      corrupted[pos] = nv;
    }
    if (!changed) continue;
    auto r = replication::Message::decode(corrupted);
    if (r && replication::verify_message(*r, registry)) {
      // Only acceptable if the decoded core fields are IDENTICAL to the
      // original (mutation hit the non-core routing field or signature
      // presence encoding in a way that reconstructed the same content).
      if (r->signing_bytes() != msg.signing_bytes()) ++verified_mutants;
    }
  }
  EXPECT_EQ(verified_mutants, 0);
}

}  // namespace
}  // namespace fortress
