// Tests for the dense-id message plane: interner determinism, flat-table
// attachment, connection-slot reuse, and payload-buffer pooling.
#include "net/interner.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/check.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace fortress::net {
namespace {

class NullHandler : public Handler {
 public:
  void on_message(const Envelope&) override { ++messages; }
  int messages = 0;
};

TEST(AddressInternerTest, IdsAssignedInRegistrationOrder) {
  AddressInterner interner;
  EXPECT_EQ(interner.intern("alpha"), 0u);
  EXPECT_EQ(interner.intern("beta"), 1u);
  EXPECT_EQ(interner.intern("gamma"), 2u);
  // Idempotent: re-interning returns the original id.
  EXPECT_EQ(interner.intern("alpha"), 0u);
  EXPECT_EQ(interner.size(), 3u);
  EXPECT_EQ(interner.name(1), "beta");
  EXPECT_EQ(interner.find("gamma"), 2u);
  EXPECT_EQ(interner.find("never-seen"), kInvalidHost);
}

TEST(AddressInternerTest, NameReferencesStayStableAcrossGrowth) {
  AddressInterner interner;
  interner.intern("first");
  const Address& first = interner.name(0);
  for (int i = 0; i < 1000; ++i) {
    interner.intern("host-" + std::to_string(i));
  }
  EXPECT_EQ(first, "first");  // deque storage: no reallocation moved it
  EXPECT_EQ(&first, &interner.name(0));
}

TEST(NetworkInternerTest, AttachOrderAssignsDenseIds) {
  sim::Simulator sim;
  Network net(sim, std::make_unique<FixedLatency>(1.0));
  NullHandler a, b, c;
  EXPECT_EQ(net.attach("a", a), 0u);
  EXPECT_EQ(net.attach("b", b), 1u);
  EXPECT_EQ(net.attach("c", c), 2u);
  EXPECT_EQ(net.address_of(1), "b");
}

TEST(NetworkInternerTest, IdsStableAcrossReset) {
  // The arena-reuse contract: a Network::reset forgets attachments but NOT
  // the interner, so a rebuilt deployment that re-registers the same
  // addresses in the same order sees the same ids — and a deployment
  // rebuilt in a DIFFERENT order still resolves existing names to their
  // original ids.
  sim::Simulator sim;
  Network net(sim, std::make_unique<FixedLatency>(1.0));
  NullHandler a, b;
  const HostId ida = net.attach("a", a);
  const HostId idb = net.attach("b", b);
  net.reset(std::make_unique<FixedLatency>(1.0), NetworkConfig{});
  EXPECT_FALSE(net.attached(ida));
  EXPECT_EQ(net.id_of("a"), ida);
  EXPECT_EQ(net.id_of("b"), idb);
  // Re-attach in swapped order: interned ids do not change.
  EXPECT_EQ(net.attach("b", b), idb);
  EXPECT_EQ(net.attach("a", a), ida);
}

TEST(NetworkInternerTest, DetachFreesTheSlotForReattach) {
  sim::Simulator sim;
  Network net(sim, std::make_unique<FixedLatency>(1.0));
  NullHandler a, a2;
  const HostId id = net.attach("a", a);
  net.detach(id);
  EXPECT_FALSE(net.attached(id));
  // Same address, same slot, new handler.
  EXPECT_EQ(net.attach("a", a2), id);
  net.send(id, id, Bytes{1});
  sim.run();
  EXPECT_EQ(a2.messages, 1);
  EXPECT_EQ(a.messages, 0);
}

TEST(NetworkConnSlotTest, SlotsAreReusedAfterTeardown) {
  sim::Simulator sim;
  Network net(sim, std::make_unique<FixedLatency>(1.0));
  NullHandler a, b;
  const HostId ha = net.attach("a", a);
  const HostId hb = net.attach("b", b);

  auto c1 = net.connect(ha, hb);
  ASSERT_TRUE(c1.has_value());
  EXPECT_EQ(net.open_connections(), 1u);
  net.close(*c1, ha);
  EXPECT_EQ(net.open_connections(), 0u);

  // The freed slot is reused; the generation bump makes the new id distinct
  // so the stale handle stays dead (no ABA).
  auto c2 = net.connect(ha, hb);
  ASSERT_TRUE(c2.has_value());
  EXPECT_EQ(net.open_connections(), 1u);
  EXPECT_NE(*c2, *c1);
  EXPECT_FALSE(net.send_on(*c1, ha, Bytes{1}));  // stale id: rejected
  EXPECT_TRUE(net.send_on(*c2, ha, Bytes{2}));
  sim.run();
  EXPECT_EQ(b.messages, 1);

  // Churn: repeated connect/close cycles do not grow the slot table
  // unboundedly (the free list recycles; open count stays exact).
  for (int i = 0; i < 100; ++i) {
    auto c = net.connect(ha, hb);
    ASSERT_TRUE(c.has_value());
    net.close(*c, ha);
  }
  EXPECT_EQ(net.open_connections(), 1u);  // only c2 remains
}

TEST(NetworkConnSlotTest, InFlightMessageDiesWithSlotReuse) {
  // A message in flight on a torn-down connection must NOT be delivered on
  // the connection that reused its slot.
  sim::Simulator sim;
  Network net(sim, std::make_unique<FixedLatency>(1.0));
  NullHandler a, b;
  const HostId ha = net.attach("a", a);
  const HostId hb = net.attach("b", b);
  auto c1 = net.connect(ha, hb);
  sim.run();
  net.send_on(*c1, ha, Bytes{1});  // in flight for 1 time unit
  net.close(*c1, ha);              // torn down before delivery
  auto c2 = net.connect(ha, hb);   // reuses the slot
  ASSERT_TRUE(c2.has_value());
  sim.run();
  EXPECT_EQ(b.messages, 0);
}

TEST(NetworkPoolTest, PayloadBuffersAreRecycled) {
  sim::Simulator sim;
  Network net(sim, std::make_unique<FixedLatency>(0.0));
  NullHandler a, b;
  const HostId ha = net.attach("a", a);
  const HostId hb = net.attach("b", b);

  // Prime: one send puts a buffer into the pool after delivery.
  net.send(ha, hb, Bytes(64, 0xAA));
  sim.run();

  // The recycled buffer comes back with its capacity intact.
  Bytes buf = net.acquire_buffer();
  EXPECT_TRUE(buf.empty());
  EXPECT_GE(buf.capacity(), 64u);
  const std::uint8_t* data = buf.data();
  buf.assign(32, 0xBB);
  EXPECT_EQ(buf.data(), data);  // no reallocation at steady-state sizes
  net.send(ha, hb, std::move(buf));
  sim.run();
  EXPECT_EQ(b.messages, 2);
}

}  // namespace
}  // namespace fortress::net
