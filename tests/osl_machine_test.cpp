#include "osl/machine.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/check.hpp"
#include "net/network.hpp"
#include "osl/probe.hpp"
#include "sim/simulator.hpp"

namespace fortress::osl {
namespace {

class RecordingApp : public Application {
 public:
  void handle_message(const net::Envelope& env) override {
    payloads.push_back(Bytes(env.payload.begin(), env.payload.end()));
  }
  void handle_connection_closed(net::ConnectionId, net::HostId,
                                net::CloseReason reason) override {
    close_reasons.push_back(reason);
  }
  void handle_reboot() override { ++reboots; }

  std::vector<Bytes> payloads;
  std::vector<net::CloseReason> close_reasons;
  int reboots = 0;
};

class AttackerHandler : public net::Handler {
 public:
  void on_message(const net::Envelope& env) override {
    if (is_owned_ack(env.payload)) ++owned_acks;
  }
  void on_connection_closed(net::ConnectionId, net::HostId,
                            net::CloseReason reason) override {
    if (reason == net::CloseReason::PeerCrashed) ++crashes_observed;
    ++closures;
  }
  int owned_acks = 0;
  int crashes_observed = 0;
  int closures = 0;
};

class MachineTest : public ::testing::Test {
 protected:
  MachineTest()
      : net_(sim_, std::make_unique<net::FixedLatency>(1.0)),
        machine_(net_, MachineConfig{"target", 16}) {
    machine_.set_application(&app_);
    net_.attach("attacker", attacker_);
  }

  sim::Simulator sim_;
  net::Network net_;
  Machine machine_;
  RecordingApp app_;
  AttackerHandler attacker_;
};

TEST(ProbeCodecTest, RoundTrip) {
  Bytes p = encode_probe(1234);
  EXPECT_TRUE(is_probe(p));
  auto decoded = decode_probe(p);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, 1234u);
}

TEST(ProbeCodecTest, NonProbeRejected) {
  EXPECT_FALSE(is_probe(bytes_of("hello")));
  EXPECT_FALSE(decode_probe(Bytes{}).has_value());
  Bytes wrong_magic = encode_probe(5);
  wrong_magic[0] ^= 0xff;
  EXPECT_FALSE(is_probe(wrong_magic));
}

TEST(ProbeCodecTest, OwnedAck) {
  Bytes ack = encode_owned_ack(7);
  EXPECT_TRUE(is_owned_ack(ack));
  EXPECT_FALSE(is_owned_ack(encode_probe(7)));
  EXPECT_FALSE(is_probe(ack));
}

TEST_F(MachineTest, BootAttachesToNetwork) {
  machine_.boot(3);
  EXPECT_TRUE(net_.attached("target"));
  EXPECT_EQ(machine_.key(), 3u);
  EXPECT_FALSE(machine_.compromised());
}

TEST_F(MachineTest, BootWithOutOfRangeKeyViolatesContract) {
  EXPECT_THROW(machine_.boot(16), ContractViolation);
}

TEST_F(MachineTest, DoubleBootViolatesContract) {
  machine_.boot(0);
  EXPECT_THROW(machine_.boot(1), ContractViolation);
}

TEST_F(MachineTest, WrongProbeOnConnectionCrashesChild) {
  machine_.boot(5);
  auto conn = net_.connect("attacker", "target");
  sim_.run();
  ASSERT_TRUE(conn.has_value());
  net_.send_on(*conn, "attacker", encode_probe(4));  // wrong key
  sim_.run();
  EXPECT_EQ(machine_.child_crashes(), 1u);
  EXPECT_FALSE(machine_.compromised());
  // The attacker observes the crash through the connection closure.
  EXPECT_EQ(attacker_.crashes_observed, 1);
  EXPECT_EQ(attacker_.owned_acks, 0);
}

TEST_F(MachineTest, CorrectProbeCompromises) {
  machine_.boot(5);
  bool fired = false;
  machine_.add_compromise_listener([&](Machine& m) {
    fired = true;
    EXPECT_EQ(&m, &machine_);
  });
  auto conn = net_.connect("attacker", "target");
  sim_.run();
  net_.send_on(*conn, "attacker", encode_probe(5));  // correct key
  sim_.run();
  EXPECT_TRUE(machine_.compromised());
  EXPECT_TRUE(fired);
  EXPECT_EQ(machine_.times_compromised(), 1u);
  EXPECT_EQ(attacker_.owned_acks, 1);
  EXPECT_EQ(attacker_.crashes_observed, 0);
}

TEST_F(MachineTest, DatagramProbeGivesNoObservableCrash) {
  machine_.boot(5);
  net_.send("attacker", "target", encode_probe(4));
  sim_.run();
  EXPECT_EQ(machine_.child_crashes(), 1u);
  EXPECT_EQ(attacker_.closures, 0);
  EXPECT_EQ(attacker_.owned_acks, 0);
}

TEST_F(MachineTest, DatagramProbeWithCorrectKeyAcksBack) {
  machine_.boot(5);
  net_.send("attacker", "target", encode_probe(5));
  sim_.run();
  EXPECT_TRUE(machine_.compromised());
  EXPECT_EQ(attacker_.owned_acks, 1);
}

TEST_F(MachineTest, ProbesNeverReachApplication) {
  machine_.boot(5);
  net_.send("attacker", "target", encode_probe(4));
  net_.send("attacker", "target", encode_probe(5));
  sim_.run();
  EXPECT_TRUE(app_.payloads.empty());
}

TEST_F(MachineTest, NonProbeTrafficReachesApplication) {
  machine_.boot(5);
  net_.send("attacker", "target", bytes_of("legit request"));
  sim_.run();
  ASSERT_EQ(app_.payloads.size(), 1u);
  EXPECT_EQ(string_of(app_.payloads[0]), "legit request");
}

TEST_F(MachineTest, OtherConnectionsSurviveChildCrash) {
  // A probe crash kills only the child serving that connection (forking
  // daemon model): a second client's connection stays open.
  machine_.boot(5);
  AttackerHandler other;
  net_.attach("client2", other);
  auto c1 = net_.connect("attacker", "target");
  auto c2 = net_.connect("client2", "target");
  sim_.run();
  net_.send_on(*c1, "attacker", encode_probe(4));
  sim_.run();
  EXPECT_EQ(attacker_.crashes_observed, 1);
  EXPECT_EQ(other.closures, 0);
  EXPECT_TRUE(net_.send_on(*c2, "client2", bytes_of("still here")));
}

TEST_F(MachineTest, RerandomizeCleansesCompromise) {
  machine_.boot(5);
  net_.send("attacker", "target", encode_probe(5));
  sim_.run();
  ASSERT_TRUE(machine_.compromised());
  machine_.rerandomize(9);
  EXPECT_FALSE(machine_.compromised());
  EXPECT_EQ(machine_.key(), 9u);
  EXPECT_EQ(app_.reboots, 1);
  // Old key no longer works.
  net_.send("attacker", "target", encode_probe(5));
  sim_.run();
  EXPECT_FALSE(machine_.compromised());
}

TEST_F(MachineTest, RecoverKeepsKeySoAttackerRecompromises) {
  machine_.boot(5);
  net_.send("attacker", "target", encode_probe(5));
  sim_.run();
  ASSERT_TRUE(machine_.compromised());
  machine_.recover();
  EXPECT_FALSE(machine_.compromised());
  EXPECT_EQ(machine_.key(), 5u);
  // The attacker still knows the key: instant re-compromise.
  net_.send("attacker", "target", encode_probe(5));
  sim_.run();
  EXPECT_TRUE(machine_.compromised());
  EXPECT_EQ(machine_.times_compromised(), 2u);
}

TEST_F(MachineTest, RebootDropsConnections) {
  machine_.boot(5);
  auto conn = net_.connect("attacker", "target");
  sim_.run();
  ASSERT_TRUE(conn.has_value());
  machine_.rerandomize(1);
  sim_.run();
  EXPECT_EQ(attacker_.closures, 1);
  EXPECT_FALSE(net_.send_on(*conn, "attacker", Bytes{1}));
}

TEST_F(MachineTest, AttackerCapabilitiesRequireCompromise) {
  machine_.boot(5);
  const net::HostId anywhere = net_.intern("anywhere");
  EXPECT_THROW(machine_.attacker_connect(anywhere), ContractViolation);
  EXPECT_THROW(machine_.attacker_send(anywhere, Bytes{}), ContractViolation);
}

TEST_F(MachineTest, CompromisedMachineActsWithItsIdentity) {
  AttackerHandler server;
  net_.attach("server", server);
  machine_.boot(5);
  net_.send("attacker", "target", encode_probe(5));
  sim_.run();
  ASSERT_TRUE(machine_.compromised());
  auto conn = machine_.attacker_connect(net_.id_of("server"));
  ASSERT_TRUE(conn.has_value());
  sim_.run();
  EXPECT_TRUE(machine_.attacker_send_on(*conn, bytes_of("from proxy")));
}

TEST_F(MachineTest, ShutdownDetaches) {
  machine_.boot(5);
  machine_.shutdown();
  EXPECT_FALSE(net_.attached("target"));
}

}  // namespace
}  // namespace fortress::osl
