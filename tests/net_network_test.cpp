#include "net/network.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/check.hpp"

namespace fortress::net {
namespace {

/// Records every callback it receives. Envelopes carry dense HostIds and a
/// payload view into a recycled buffer, so the recorder resolves ids back to
/// addresses and copies the payload out while the callback is live.
class RecordingHandler : public Handler {
 public:
  explicit RecordingHandler(Network& net) : net_(net) {}

  void on_message(const Envelope& env) override {
    messages.push_back({net_.address_of(env.from), net_.address_of(env.to),
                        Bytes(env.payload.begin(), env.payload.end()),
                        env.connection});
  }
  void on_connection_closed(ConnectionId id, HostId peer,
                            CloseReason reason) override {
    closed.push_back({id, net_.address_of(peer), reason});
  }
  void on_connection_opened(ConnectionId id, HostId peer) override {
    opened.push_back({id, net_.address_of(peer)});
  }

  struct Received {
    Address from;
    Address to;
    Bytes payload;
    std::optional<ConnectionId> connection;
  };
  struct Closed {
    ConnectionId id;
    Address peer;
    CloseReason reason;
  };
  std::vector<Received> messages;
  std::vector<Closed> closed;
  std::vector<std::pair<ConnectionId, Address>> opened;

 private:
  Network& net_;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() {
    net_.attach("a", a_);
    net_.attach("b", b_);
  }

  sim::Simulator sim_;
  Network net_{sim_, std::make_unique<FixedLatency>(1.0)};
  RecordingHandler a_{net_}, b_{net_};
};

TEST_F(NetworkTest, DatagramDelivery) {
  net_.send("a", "b", Bytes{1, 2, 3});
  sim_.run();
  ASSERT_EQ(b_.messages.size(), 1u);
  EXPECT_EQ(b_.messages[0].from, "a");
  EXPECT_EQ(b_.messages[0].to, "b");
  EXPECT_EQ(b_.messages[0].payload, (Bytes{1, 2, 3}));
  EXPECT_FALSE(b_.messages[0].connection.has_value());
}

TEST_F(NetworkTest, DeliveryTakesLatency) {
  net_.send("a", "b", Bytes{9});
  sim_.run_until(0.5);
  EXPECT_TRUE(b_.messages.empty());
  sim_.run_until(1.0);
  EXPECT_EQ(b_.messages.size(), 1u);
}

TEST_F(NetworkTest, SendToUnknownAddressIsDropped) {
  net_.send("a", "ghost", Bytes{1});
  sim_.run();
  EXPECT_EQ(net_.delivered_count(), 0u);
}

TEST_F(NetworkTest, DetachDropsInFlightMessages) {
  net_.send("a", "b", Bytes{1});
  net_.detach("b");
  sim_.run();
  EXPECT_TRUE(b_.messages.empty());
}

TEST_F(NetworkTest, ConnectNotifiesAcceptor) {
  auto conn = net_.connect("a", "b");
  ASSERT_TRUE(conn.has_value());
  sim_.run();
  ASSERT_EQ(b_.opened.size(), 1u);
  EXPECT_EQ(b_.opened[0].first, *conn);
  EXPECT_EQ(b_.opened[0].second, "a");
}

TEST_F(NetworkTest, ConnectToUnknownRefused) {
  EXPECT_FALSE(net_.connect("a", "nobody").has_value());
}

TEST_F(NetworkTest, ConnectionMessagesFlowBothWays) {
  auto conn = net_.connect("a", "b");
  ASSERT_TRUE(conn.has_value());
  sim_.run();
  EXPECT_TRUE(net_.send_on(*conn, "a", Bytes{1}));
  EXPECT_TRUE(net_.send_on(*conn, "b", Bytes{2}));
  sim_.run();
  ASSERT_EQ(b_.messages.size(), 1u);
  ASSERT_EQ(a_.messages.size(), 1u);
  EXPECT_EQ(b_.messages[0].connection, conn);
  EXPECT_EQ(a_.messages[0].connection, conn);
}

TEST_F(NetworkTest, SendOnByNonEndpointRejected) {
  RecordingHandler c{net_};
  net_.attach("c", c);
  auto conn = net_.connect("a", "b");
  ASSERT_TRUE(conn.has_value());
  sim_.run();
  EXPECT_FALSE(net_.send_on(*conn, "c", Bytes{1}));
}

TEST_F(NetworkTest, CloseNotifiesPeerWithPeerClosed) {
  auto conn = net_.connect("a", "b");
  sim_.run();
  net_.close(*conn, "a");
  sim_.run();
  ASSERT_EQ(b_.closed.size(), 1u);
  EXPECT_EQ(b_.closed[0].reason, CloseReason::PeerClosed);
  EXPECT_EQ(b_.closed[0].peer, "a");
  EXPECT_EQ(net_.open_connections(), 0u);
}

TEST_F(NetworkTest, AbortNotifiesPeerWithPeerCrashed) {
  auto conn = net_.connect("a", "b");
  sim_.run();
  net_.abort(*conn, "b");
  sim_.run();
  ASSERT_EQ(a_.closed.size(), 1u);
  EXPECT_EQ(a_.closed[0].reason, CloseReason::PeerCrashed);
}

TEST_F(NetworkTest, SendOnClosedConnectionFails) {
  auto conn = net_.connect("a", "b");
  sim_.run();
  net_.close(*conn, "a");
  EXPECT_FALSE(net_.send_on(*conn, "a", Bytes{1}));
}

TEST_F(NetworkTest, MessageInFlightWhenConnectionDiesIsDropped) {
  auto conn = net_.connect("a", "b");
  sim_.run();
  net_.send_on(*conn, "a", Bytes{1});
  net_.close(*conn, "a");  // closes before the 1-unit delivery latency
  sim_.run();
  EXPECT_TRUE(b_.messages.empty());
}

TEST_F(NetworkTest, DetachClosesAllConnectionsWithReason) {
  RecordingHandler c{net_};
  net_.attach("c", c);
  auto c1 = net_.connect("a", "b");
  auto c2 = net_.connect("c", "b");
  sim_.run();
  ASSERT_TRUE(c1 && c2);
  net_.detach("b", CloseReason::PeerCrashed);
  sim_.run();
  ASSERT_EQ(a_.closed.size(), 1u);
  ASSERT_EQ(c.closed.size(), 1u);
  EXPECT_EQ(a_.closed[0].reason, CloseReason::PeerCrashed);
  EXPECT_EQ(c.closed[0].reason, CloseReason::PeerCrashed);
}

TEST_F(NetworkTest, AttachTwiceViolatesContract) {
  RecordingHandler dup{net_};
  EXPECT_THROW(net_.attach("a", dup), ContractViolation);
}

TEST_F(NetworkTest, DetachUnknownIsNoop) {
  net_.detach("ghost");  // must not throw
}

TEST_F(NetworkTest, ReattachAfterDetach) {
  net_.detach("b");
  RecordingHandler b2{net_};
  net_.attach("b", b2);
  net_.send("a", "b", Bytes{5});
  sim_.run();
  EXPECT_EQ(b2.messages.size(), 1u);
}

TEST(NetworkDropTest, DropProbabilityOneDropsEverything) {
  sim::Simulator sim;
  NetworkConfig cfg;
  cfg.drop_probability = 1.0;
  Network net(sim, std::make_unique<FixedLatency>(1.0), cfg);
  RecordingHandler a{net}, b{net};
  net.attach("a", a);
  net.attach("b", b);
  for (int i = 0; i < 50; ++i) net.send("a", "b", Bytes{1});
  sim.run();
  EXPECT_TRUE(b.messages.empty());
}

TEST(NetworkDropTest, ConnectionsAreReliableDespiteDrops) {
  sim::Simulator sim;
  NetworkConfig cfg;
  cfg.drop_probability = 1.0;  // drops apply to datagrams only
  Network net(sim, std::make_unique<FixedLatency>(1.0), cfg);
  RecordingHandler a{net}, b{net};
  net.attach("a", a);
  net.attach("b", b);
  auto conn = net.connect("a", "b");
  sim.run();
  ASSERT_TRUE(conn.has_value());
  net.send_on(*conn, "a", Bytes{1});
  sim.run();
  EXPECT_EQ(b.messages.size(), 1u);
}

TEST_F(NetworkTest, DetachLocalDetachReasonReachesPeer) {
  // The reboot/teardown path (osl::Machine) detaches with an explicit
  // reason; the surviving peer must see exactly that reason so it can
  // distinguish an orderly restart from a crash side channel.
  auto conn = net_.connect("a", "b");
  sim_.run();
  ASSERT_TRUE(conn.has_value());
  net_.detach("b", CloseReason::LocalDetach);
  sim_.run();
  ASSERT_EQ(a_.closed.size(), 1u);
  EXPECT_EQ(a_.closed[0].reason, CloseReason::LocalDetach);
  EXPECT_EQ(a_.closed[0].peer, "b");
  // The detached endpoint itself is never called back: it is gone.
  EXPECT_TRUE(b_.closed.empty());
}

TEST_F(NetworkTest, DetachDefaultReasonIsPeerClosed) {
  auto conn = net_.connect("a", "b");
  sim_.run();
  ASSERT_TRUE(conn.has_value());
  net_.detach("b");
  sim_.run();
  ASSERT_EQ(a_.closed.size(), 1u);
  EXPECT_EQ(a_.closed[0].reason, CloseReason::PeerClosed);
}

// --- send_batch: the population plane's framed batch delivery -------------

Bytes make_frames(std::initializer_list<Bytes> frames) {
  Bytes out;
  for (const Bytes& f : frames) {
    append_u32_be(out, static_cast<std::uint32_t>(f.size()));
    out.insert(out.end(), f.begin(), f.end());
  }
  return out;
}

TEST_F(NetworkTest, SendBatchDeliversFramesInOrderAtOneTime) {
  const HostId a = net_.id_of("a");
  const HostId b = net_.id_of("b");
  net_.send_batch(a, b, make_frames({{1}, {2, 2}, {3, 3, 3}}), 3);
  // One scheduled delivery: nothing before the (single) latency sample...
  sim_.run_until(0.5);
  EXPECT_TRUE(b_.messages.empty());
  // ...then every frame, in frame order, as separate envelopes.
  sim_.run();
  ASSERT_EQ(b_.messages.size(), 3u);
  EXPECT_EQ(b_.messages[0].payload, (Bytes{1}));
  EXPECT_EQ(b_.messages[1].payload, (Bytes{2, 2}));
  EXPECT_EQ(b_.messages[2].payload, (Bytes{3, 3, 3}));
  EXPECT_EQ(b_.messages[0].from, "a");
  EXPECT_EQ(net_.delivered_count(), 3u);
}

TEST_F(NetworkTest, SendBatchZeroCountIsNoEvent) {
  net_.send_batch(net_.id_of("a"), net_.id_of("b"), Bytes{}, 0);
  EXPECT_TRUE(sim_.idle());
}

TEST_F(NetworkTest, SendBatchToDetachedHostIsDropped) {
  const HostId a = net_.id_of("a");
  const HostId b = net_.id_of("b");
  net_.send_batch(a, b, make_frames({{7}, {8}}), 2);
  net_.detach("b");
  sim_.run();
  EXPECT_TRUE(b_.messages.empty());
  EXPECT_EQ(net_.delivered_count(), 0u);
}

TEST(NetworkBatchDropTest, DropCoinsApplyPerFrame) {
  sim::Simulator sim;
  NetworkConfig cfg;
  cfg.drop_probability = 1.0;
  Network net(sim, std::make_unique<FixedLatency>(1.0), cfg);
  RecordingHandler a{net}, b{net};
  const HostId ida = net.attach("a", a);
  const HostId idb = net.attach("b", b);
  net.send_batch(ida, idb, make_frames({{1}, {2}, {3}}), 3);
  sim.run();
  EXPECT_TRUE(b.messages.empty());
  EXPECT_EQ(net.delivered_count(), 0u);
}

TEST(NetworkDupTest, DuplicateProbabilityOneDeliversDatagramTwice) {
  sim::Simulator sim;
  NetworkConfig cfg;
  cfg.duplicate_probability = 1.0;
  Network net(sim, std::make_unique<FixedLatency>(1.0), cfg);
  RecordingHandler a{net}, b{net};
  net.attach("a", a);
  net.attach("b", b);
  net.send("a", "b", Bytes{7});
  sim.run();
  ASSERT_EQ(b.messages.size(), 2u);
  EXPECT_EQ(b.messages[0].payload, (Bytes{7}));
  EXPECT_EQ(b.messages[1].payload, (Bytes{7}));
}

TEST(NetworkDupTest, ConnectionsNeverDuplicate) {
  sim::Simulator sim;
  NetworkConfig cfg;
  cfg.duplicate_probability = 1.0;  // duplication applies to datagrams only
  Network net(sim, std::make_unique<FixedLatency>(1.0), cfg);
  RecordingHandler a{net}, b{net};
  net.attach("a", a);
  net.attach("b", b);
  auto conn = net.connect("a", "b");
  sim.run();
  ASSERT_TRUE(conn.has_value());
  net.send_on(*conn, "a", Bytes{1});
  sim.run();
  EXPECT_EQ(b.messages.size(), 1u);
}

TEST(NetworkPartitionTest, ActiveWindowBlocksBothDirections) {
  sim::Simulator sim;
  NetworkConfig cfg;
  cfg.partitions.push_back(PartitionWindow{0.0, 10.0, {"a"}});
  Network net(sim, std::make_unique<FixedLatency>(1.0), cfg);
  RecordingHandler a{net}, b{net}, c{net};
  net.attach("a", a);
  net.attach("b", b);
  net.attach("c", c);
  net.send("a", "b", Bytes{1});  // crosses the island boundary: lost
  net.send("b", "a", Bytes{2});  // lost
  net.send("b", "c", Bytes{3});  // both outside the island: delivered
  sim.run();
  EXPECT_TRUE(a.messages.empty());
  EXPECT_TRUE(b.messages.empty());
  EXPECT_EQ(c.messages.size(), 1u);
}

TEST(NetworkPartitionTest, TrafficFlowsAfterWindowEnds) {
  sim::Simulator sim;
  NetworkConfig cfg;
  cfg.partitions.push_back(PartitionWindow{0.0, 10.0, {"a"}});
  Network net(sim, std::make_unique<FixedLatency>(1.0), cfg);
  RecordingHandler a{net}, b{net};
  net.attach("a", a);
  net.attach("b", b);
  // Partition loss is evaluated at SEND time, so heal the window first.
  sim.schedule_at(10.0, [] {});
  sim.run();
  net.send("a", "b", Bytes{1});
  sim.run();
  EXPECT_EQ(b.messages.size(), 1u);
}

TEST(NetworkPartitionTest, ConnectionMessageSentDuringWindowIsLost) {
  // Connections are exempt from datagram drops but NOT from partitions: a
  // send_on during an active window is lost at send time (send_on still
  // returns true — the connection itself survives the window).
  sim::Simulator sim;
  NetworkConfig cfg;
  cfg.partitions.push_back(PartitionWindow{5.0, 10.0, {"a"}});
  Network net(sim, std::make_unique<FixedLatency>(1.0), cfg);
  RecordingHandler a{net}, b{net};
  net.attach("a", a);
  net.attach("b", b);
  auto conn = net.connect("a", "b");  // established before the window
  sim.run();
  ASSERT_TRUE(conn.has_value());
  sim.schedule_at(6.0, [] {});
  sim.run();
  EXPECT_TRUE(net.send_on(*conn, "a", Bytes{1}));  // inside the window: lost
  sim.schedule_at(10.0, [] {});
  sim.run();
  EXPECT_TRUE(b.messages.empty());
  EXPECT_TRUE(net.send_on(*conn, "a", Bytes{2}));  // window over: delivered
  sim.run();
  ASSERT_EQ(b.messages.size(), 1u);
  EXPECT_EQ(b.messages[0].payload, (Bytes{2}));
}

TEST(NetworkPartitionTest, ConnectRefusedAcrossActivePartition) {
  sim::Simulator sim;
  NetworkConfig cfg;
  cfg.partitions.push_back(PartitionWindow{0.0, 10.0, {"a"}});
  Network net(sim, std::make_unique<FixedLatency>(1.0), cfg);
  RecordingHandler a{net}, b{net};
  net.attach("a", a);
  net.attach("b", b);
  EXPECT_FALSE(net.connect("a", "b").has_value());
  sim.schedule_at(10.0, [] {});
  sim.run();
  EXPECT_TRUE(net.connect("a", "b").has_value());
}

TEST(NetworkScenarioTest, PlanConstructedNetworkHonorsLatencySpec) {
  sim::Simulator sim;
  ScenarioPlan plan;
  plan.latency = LatencySpec::uniform(2.0, 4.0);
  Network net(sim, plan, /*rng_seed=*/5);
  RecordingHandler a{net}, b{net};
  net.attach("a", a);
  net.attach("b", b);
  for (int i = 0; i < 20; ++i) net.send("a", "b", Bytes{1});
  sim.run_until(1.99);
  EXPECT_TRUE(b.messages.empty());
  sim.run_until(4.01);
  EXPECT_EQ(b.messages.size(), 20u);
}

TEST(NetworkLatencyTest, UniformLatencyWithinBounds) {
  sim::Simulator sim;
  Network net(sim, std::make_unique<UniformLatency>(2.0, 4.0));
  RecordingHandler a{net}, b{net};
  net.attach("a", a);
  net.attach("b", b);
  for (int i = 0; i < 20; ++i) net.send("a", "b", Bytes{1});
  sim.run_until(1.99);
  EXPECT_TRUE(b.messages.empty());
  sim.run_until(4.01);
  EXPECT_EQ(b.messages.size(), 20u);
}

}  // namespace
}  // namespace fortress::net
