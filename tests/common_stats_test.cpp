#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace fortress {
namespace {

TEST(RunningStatsTest, EmptyPreconditions) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_THROW(s.mean(), ContractViolation);
  EXPECT_THROW(s.min(), ContractViolation);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_THROW(s.variance(), ContractViolation);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  RunningStats all, a, b;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.uniform01() * 10;
    all.add(x);
    if (i % 2 == 0) {
      a.add(x);
    } else {
      b.add(x);
    }
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStats target;
  target.merge(a);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
}

TEST(ConfidenceIntervalTest, CoversTrueMeanApproximately) {
  // 95% CI should contain the true mean in ~95% of repetitions.
  int covered = 0;
  constexpr int kReps = 400;
  for (int rep = 0; rep < kReps; ++rep) {
    Rng rng(1000 + rep);
    RunningStats s;
    for (int i = 0; i < 200; ++i) s.add(rng.uniform01());
    ConfidenceInterval ci = normal_ci(s, 0.95);
    if (ci.contains(0.5)) ++covered;
  }
  double coverage = static_cast<double>(covered) / kReps;
  EXPECT_GT(coverage, 0.90);
  EXPECT_LE(coverage, 1.0);
}

TEST(ConfidenceIntervalTest, WiderAtHigherLevel) {
  RunningStats s;
  Rng rng(2);
  for (int i = 0; i < 100; ++i) s.add(rng.uniform01());
  EXPECT_LT(normal_ci(s, 0.90).width(), normal_ci(s, 0.95).width());
  EXPECT_LT(normal_ci(s, 0.95).width(), normal_ci(s, 0.99).width());
}

TEST(ConfidenceIntervalTest, LevelBucketsPinned) {
  // normal_ci buckets the level to the nearest supported z-score (the
  // adaptive campaign stopping rule depends on these widths): >= 0.989 ->
  // z99, >= 0.949 -> z95, below -> z90. Pin all three, and pin that an
  // off-grid level like 0.97 lands in the 95% bucket rather than anything
  // bespoke.
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  const double se = s.stderr_mean();
  constexpr double kZ90 = 1.6448536269514722;
  constexpr double kZ95 = 1.959963984540054;
  constexpr double kZ99 = 2.5758293035489004;
  EXPECT_DOUBLE_EQ(normal_ci(s, 0.90).width(), 2.0 * kZ90 * se);
  EXPECT_DOUBLE_EQ(normal_ci(s, 0.95).width(), 2.0 * kZ95 * se);
  EXPECT_DOUBLE_EQ(normal_ci(s, 0.99).width(), 2.0 * kZ99 * se);
  EXPECT_DOUBLE_EQ(normal_ci(s, 0.97).width(), 2.0 * kZ95 * se);   // bucketed
  EXPECT_DOUBLE_EQ(normal_ci(s, 0.949).width(), 2.0 * kZ95 * se);  // boundary
  EXPECT_DOUBLE_EQ(normal_ci(s, 0.5).width(), 2.0 * kZ90 * se);
}

TEST(ConfidenceIntervalTest, LevelOutOfRangeThrows) {
  RunningStats s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_THROW(normal_ci(s, 0.0), ContractViolation);
  EXPECT_THROW(normal_ci(s, 1.0), ContractViolation);
  EXPECT_THROW(normal_ci(s, -0.5), ContractViolation);
  EXPECT_THROW(normal_ci(s, 1.5), ContractViolation);
}

TEST(QuantileTest, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(QuantileTest, Extremes) {
  std::vector<double> data{5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(data, 1.0), 9.0);
}

TEST(QuantileTest, Interpolates) {
  // Sorted: 0, 10. q=0.25 -> 2.5.
  EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 0.25), 2.5);
}

TEST(QuantileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.9), 7.0);
}

TEST(QuantileTest, EmptyThrows) {
  EXPECT_THROW(quantile({}, 0.5), ContractViolation);
}

TEST(RelativeErrorTest, Basics) {
  EXPECT_DOUBLE_EQ(relative_error(100.0, 110.0), 10.0 / 110.0);
  EXPECT_DOUBLE_EQ(relative_error(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(relative_error(-5.0, 5.0), 2.0);
}

TEST(RunningStatsTest, FromRawRebuildsBitIdenticalState) {
  // The shard sidecar contract: round-tripping the raw Welford state must
  // reproduce the accumulator exactly, so merges of deserialized stats are
  // bit-identical to merges of the originals.
  RunningStats a;
  for (double x : {3.25, -1.5, 12.0, 7.75, 0.125}) a.add(x);
  const RunningStats b = RunningStats::from_raw(
      a.count(), a.raw_mean(), a.raw_m2(), a.raw_min(), a.raw_max());
  EXPECT_EQ(b.count(), a.count());
  EXPECT_EQ(b.mean(), a.mean());
  EXPECT_EQ(b.variance(), a.variance());
  EXPECT_EQ(b.min(), a.min());
  EXPECT_EQ(b.max(), a.max());

  // Continuing to accumulate after the round-trip stays bit-identical.
  RunningStats a2 = a, b2 = b;
  a2.add(42.5);
  b2.add(42.5);
  EXPECT_EQ(b2.mean(), a2.mean());
  EXPECT_EQ(b2.variance(), a2.variance());

  // Raw state is defined (all zero) even when empty.
  const RunningStats empty;
  EXPECT_EQ(empty.raw_mean(), 0.0);
  EXPECT_EQ(empty.raw_m2(), 0.0);
  const RunningStats rebuilt = RunningStats::from_raw(0, 0.0, 0.0, 0.0, 0.0);
  EXPECT_EQ(rebuilt.count(), 0u);
}

TEST(WilsonCiTest, MatchesClosedFormAndStaysInRange) {
  // 19/100 at 95%: check against the Wilson closed form directly.
  const ConfidenceInterval ci = wilson_ci(19, 100, 0.95);
  const double z = 1.959963985;
  const double p = 0.19, n = 100.0;
  const double denom = 1.0 + z * z / n;
  const double center = (p + z * z / (2 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1 - p) / n + z * z / (4 * n * n)) / denom;
  EXPECT_NEAR(ci.lo, center - half, 1e-9);
  EXPECT_NEAR(ci.hi, center + half, 1e-9);
  EXPECT_EQ(ci.level, 0.95);

  // Proportions live in [0, 1]; the interval must too, at both extremes.
  const ConfidenceInterval zero = wilson_ci(0, 10, 0.95);
  EXPECT_EQ(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  const ConfidenceInterval all = wilson_ci(10, 10, 0.95);
  EXPECT_LT(all.lo, 1.0);
  EXPECT_NEAR(all.hi, 1.0, 1e-12);
  EXPECT_LE(all.hi, 1.0);
}

TEST(WilsonCiTest, ZeroSuccessWidthShrinksLikeZSquaredOverN) {
  // The rare-event property the compromise-probability stopping rule
  // leans on: at p-hat = 0 the width still shrinks as n grows (unlike the
  // Wald interval, which is stuck at zero width and no information).
  const double w100 = wilson_ci(0, 100).width();
  const double w1000 = wilson_ci(0, 1000).width();
  EXPECT_GT(w100, 0.0);
  EXPECT_LT(w1000, w100 / 5.0);
  // Symmetry: successes and failures mirror.
  EXPECT_NEAR(wilson_ci(0, 50).width(), wilson_ci(50, 50).width(), 1e-12);
}

TEST(WilsonCiTest, Preconditions) {
  EXPECT_THROW(wilson_ci(1, 0), ContractViolation);
  EXPECT_THROW(wilson_ci(5, 4), ContractViolation);
  EXPECT_THROW(wilson_ci(1, 10, 1.5), ContractViolation);
}

TEST(LatencyHistogramTest, AddBinRebuildsExactly) {
  LatencyHistogram a;
  for (double v : {0.02, 0.02, 0.5, 3.0, 700.0}) a.add(v);
  LatencyHistogram b;
  for (int bin = 0; bin < LatencyHistogram::kBins; ++bin) {
    if (a.bin(bin) > 0) b.add_bin(bin, a.bin(bin));
  }
  EXPECT_EQ(b.count(), a.count());
  EXPECT_EQ(b.fingerprint(), a.fingerprint());
  EXPECT_EQ(b.quantile(0.5), a.quantile(0.5));
  EXPECT_THROW(b.add_bin(-1, 1), ContractViolation);
  EXPECT_THROW(b.add_bin(LatencyHistogram::kBins, 1), ContractViolation);
}

TEST(LatencyHistogramTest, QuantileCiEmptyAndSingleBin) {
  const LatencyHistogram empty;
  const ConfidenceInterval none = empty.quantile_ci(0.5);
  EXPECT_EQ(none.lo, 0.0);
  EXPECT_EQ(none.hi, 0.0);

  // All mass in one bin: the rank band cannot leave it, so the interval
  // collapses to zero width at that bin's upper edge.
  LatencyHistogram h;
  h.add_bin(17, 1000);
  const ConfidenceInterval ci = h.quantile_ci(0.99);
  EXPECT_EQ(ci.lo, ci.hi);
  EXPECT_EQ(ci.lo, LatencyHistogram::bin_upper_edge(17));
}

TEST(LatencyHistogramTest, QuantileCiBandCoversPointEstimate) {
  // Mass spread over several bins with a small sample: the binomial rank
  // band spans bins, the interval has real width, and it brackets the
  // point quantile. More samples at the same shape tighten it.
  LatencyHistogram small;
  small.add_bin(10, 4);
  small.add_bin(20, 4);
  small.add_bin(30, 4);
  const ConfidenceInterval wide = small.quantile_ci(0.5);
  EXPECT_GT(wide.width(), 0.0);
  EXPECT_LE(wide.lo, small.quantile(0.5));
  EXPECT_GE(wide.hi, small.quantile(0.5));

  LatencyHistogram big;
  big.add_bin(10, 4000);
  big.add_bin(20, 4000);
  big.add_bin(30, 4000);
  EXPECT_LT(big.quantile_ci(0.5).width(), wide.width());

  // A band touching the overflow bin has no finite upper edge.
  LatencyHistogram tail;
  tail.add_bin(LatencyHistogram::kBins - 1, 8);
  EXPECT_EQ(tail.quantile_ci(0.99).hi,
            std::numeric_limits<double>::infinity());
}

}  // namespace
}  // namespace fortress
