#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace fortress {
namespace {

TEST(RunningStatsTest, EmptyPreconditions) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_THROW(s.mean(), ContractViolation);
  EXPECT_THROW(s.min(), ContractViolation);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_THROW(s.variance(), ContractViolation);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  RunningStats all, a, b;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.uniform01() * 10;
    all.add(x);
    if (i % 2 == 0) {
      a.add(x);
    } else {
      b.add(x);
    }
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStats target;
  target.merge(a);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
}

TEST(ConfidenceIntervalTest, CoversTrueMeanApproximately) {
  // 95% CI should contain the true mean in ~95% of repetitions.
  int covered = 0;
  constexpr int kReps = 400;
  for (int rep = 0; rep < kReps; ++rep) {
    Rng rng(1000 + rep);
    RunningStats s;
    for (int i = 0; i < 200; ++i) s.add(rng.uniform01());
    ConfidenceInterval ci = normal_ci(s, 0.95);
    if (ci.contains(0.5)) ++covered;
  }
  double coverage = static_cast<double>(covered) / kReps;
  EXPECT_GT(coverage, 0.90);
  EXPECT_LE(coverage, 1.0);
}

TEST(ConfidenceIntervalTest, WiderAtHigherLevel) {
  RunningStats s;
  Rng rng(2);
  for (int i = 0; i < 100; ++i) s.add(rng.uniform01());
  EXPECT_LT(normal_ci(s, 0.90).width(), normal_ci(s, 0.95).width());
  EXPECT_LT(normal_ci(s, 0.95).width(), normal_ci(s, 0.99).width());
}

TEST(ConfidenceIntervalTest, LevelBucketsPinned) {
  // normal_ci buckets the level to the nearest supported z-score (the
  // adaptive campaign stopping rule depends on these widths): >= 0.989 ->
  // z99, >= 0.949 -> z95, below -> z90. Pin all three, and pin that an
  // off-grid level like 0.97 lands in the 95% bucket rather than anything
  // bespoke.
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  const double se = s.stderr_mean();
  constexpr double kZ90 = 1.6448536269514722;
  constexpr double kZ95 = 1.959963984540054;
  constexpr double kZ99 = 2.5758293035489004;
  EXPECT_DOUBLE_EQ(normal_ci(s, 0.90).width(), 2.0 * kZ90 * se);
  EXPECT_DOUBLE_EQ(normal_ci(s, 0.95).width(), 2.0 * kZ95 * se);
  EXPECT_DOUBLE_EQ(normal_ci(s, 0.99).width(), 2.0 * kZ99 * se);
  EXPECT_DOUBLE_EQ(normal_ci(s, 0.97).width(), 2.0 * kZ95 * se);   // bucketed
  EXPECT_DOUBLE_EQ(normal_ci(s, 0.949).width(), 2.0 * kZ95 * se);  // boundary
  EXPECT_DOUBLE_EQ(normal_ci(s, 0.5).width(), 2.0 * kZ90 * se);
}

TEST(ConfidenceIntervalTest, LevelOutOfRangeThrows) {
  RunningStats s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_THROW(normal_ci(s, 0.0), ContractViolation);
  EXPECT_THROW(normal_ci(s, 1.0), ContractViolation);
  EXPECT_THROW(normal_ci(s, -0.5), ContractViolation);
  EXPECT_THROW(normal_ci(s, 1.5), ContractViolation);
}

TEST(QuantileTest, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(QuantileTest, Extremes) {
  std::vector<double> data{5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(data, 1.0), 9.0);
}

TEST(QuantileTest, Interpolates) {
  // Sorted: 0, 10. q=0.25 -> 2.5.
  EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 0.25), 2.5);
}

TEST(QuantileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.9), 7.0);
}

TEST(QuantileTest, EmptyThrows) {
  EXPECT_THROW(quantile({}, 0.5), ContractViolation);
}

TEST(RelativeErrorTest, Basics) {
  EXPECT_DOUBLE_EQ(relative_error(100.0, 110.0), 10.0 / 110.0);
  EXPECT_DOUBLE_EQ(relative_error(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(relative_error(-5.0, 5.0), 2.0);
}

}  // namespace
}  // namespace fortress
