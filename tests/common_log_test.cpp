#include "common/log.hpp"

#include <gtest/gtest.h>

namespace fortress {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(LogTest, DefaultLevelIsWarn) {
  EXPECT_EQ(log_level(), LogLevel::Warn);
}

TEST(LogTest, SetAndGetLevel) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Off);
  EXPECT_EQ(log_level(), LogLevel::Off);
}

TEST(LogTest, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::Trace), "TRACE");
  EXPECT_STREQ(log_level_name(LogLevel::Debug), "DEBUG");
  EXPECT_STREQ(log_level_name(LogLevel::Info), "INFO");
  EXPECT_STREQ(log_level_name(LogLevel::Warn), "WARN");
  EXPECT_STREQ(log_level_name(LogLevel::Error), "ERROR");
  EXPECT_STREQ(log_level_name(LogLevel::Off), "OFF");
}

TEST(LogTest, MacroBelowThresholdDoesNotEvaluateStream) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Error);
  int evaluations = 0;
  auto count = [&]() {
    ++evaluations;
    return 42;
  };
  FORTRESS_LOG_DEBUG("test") << count();
  EXPECT_EQ(evaluations, 0);  // suppressed level short-circuits
  FORTRESS_LOG_ERROR("test") << count();
  EXPECT_EQ(evaluations, 1);
}

TEST(LogTest, LogLineRespectsThreshold) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Off);
  // Nothing observable to assert beyond "does not crash"; exercised for
  // coverage of the drop path.
  log_line(LogLevel::Error, "dropped");
}

}  // namespace
}  // namespace fortress
