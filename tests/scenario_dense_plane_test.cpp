// Golden-value bit-identity test for the dense-id message plane (PR 4).
//
// The refactor that moved the live event path from string-keyed maps to
// interned HostIds, flat routing tables and pooled payload buffers was
// required to be OBSERVATIONALLY INVISIBLE: every campaign aggregate —
// trial counts, compromise splits, the bit patterns of the lifetime
// mean/variance, attacker counters, simulator event counts, blacklist
// totals — must be exactly what the string-keyed plane produced.
//
// The golden table below was captured by running THIS grid on the PR-3
// codebase (commit 3538fe8, before the dense-id plane existed). The grid
// deliberately crosses every system class with two adversarial plans that
// exercise the rekeyed paths: sybil identities (per-source detection
// tables), proxy blacklisting, datagram drop/duplication (the payload-pool
// copy path), exponential latency, and crash/recover fault schedules.
//
// Both trial-isolation strategies must reproduce the table: pooled
// per-worker arenas (interner/id stability across reset) and fresh
// per-trial stacks.
//
// PR 5 (zero-copy MessageView codec) extended the grid with a third plan,
// golden-c, covering the scenario kinds the original 6 cells missed:
// partition windows (two, crossing every system class's tiers), datagram
// duplication, and a crash -> stay-down -> recover fault schedule. Its
// golden rows were captured on the PR-4 (pre-MessageView) build and appended
// AFTER the original cells so every cell keeps its seed-determining index.
// PR 6 (overload & backpressure plane) appended a TENTH cell, golden-d:
// S2 under simultaneous attack and open-loop client traffic with a bounded
// DegradeUnsigned service queue — covering the service-queue event path,
// retry/backoff, and the latency-histogram aggregates. Its golden row was
// captured on the PR-6 build itself (the plane is new, so there is no
// prior build to capture against); cells 0-8 keep their PR-3/PR-4 values
// untouched, which is what proves the plane is inert for plans that do not
// opt in.
#include <gtest/gtest.h>

#include <cstring>

#include "scenario/campaign.hpp"

namespace fortress::scenario {
namespace {

net::ScenarioPlan plan_a() {
  net::ScenarioPlan p;
  p.name = "golden-a";
  p.keyspace = 128;
  p.attack.probes_per_step = 8.0;
  p.attack.indirect_fraction = 0.5;
  p.horizon_steps = 30;
  p.latency = net::LatencySpec::uniform(0.01, 0.02);
  return p;
}

net::ScenarioPlan plan_b() {
  net::ScenarioPlan p;
  p.name = "golden-b";
  p.keyspace = 256;
  p.attack.probes_per_step = 16.0;
  p.attack.indirect_fraction = 0.25;
  p.attack.sybil_identities = 3;
  p.horizon_steps = 20;
  p.step_duration = 50.0;
  p.latency = net::LatencySpec::exponential(0.01, 0.05);
  p.drop_probability = 0.05;
  p.duplicate_probability = 0.02;
  p.proxy_blacklist = true;
  p.detection_threshold = 4;
  p.detection_window = 200.0;
  p.faults.push_back({net::FaultEvent::Target::Server, 0, 400.0,
                      net::FaultEvent::Kind::Recover});
  p.faults.push_back({net::FaultEvent::Target::Proxy, 1, 300.0,
                      net::FaultEvent::Kind::Crash});
  p.faults.push_back({net::FaultEvent::Target::Proxy, 1, 600.0,
                      net::FaultEvent::Kind::Recover});
  return p;
}

net::ScenarioPlan plan_c() {
  net::ScenarioPlan p;
  p.name = "golden-c";
  p.keyspace = 128;
  p.attack.probes_per_step = 8.0;
  p.attack.indirect_fraction = 0.5;
  p.attack.sybil_identities = 2;
  p.horizon_steps = 25;
  p.step_duration = 60.0;
  p.latency = net::LatencySpec::uniform(0.02, 0.05);
  p.duplicate_probability = 0.04;
  p.proxy_blacklist = true;
  p.detection_threshold = 5;
  p.detection_window = 300.0;
  // Islands name each class's tier prefixes; members a class never interns
  // are inert there (S0 sees only its replicas, S2 its servers/proxies).
  p.partitions.push_back(
      {200.0, 350.0, {"s0-replica-0", "s1-server-0", "s2-server-0",
                      "s2-proxy-0"}});
  p.partitions.push_back(
      {700.0, 820.0, {"s0-replica-1", "s0-replica-2", "s1-server-1",
                      "s2-proxy-1", "s2-proxy-2"}});
  p.faults.push_back({net::FaultEvent::Target::Server, 1, 260.0,
                      net::FaultEvent::Kind::Crash});
  p.faults.push_back({net::FaultEvent::Target::Server, 1, 500.0,
                      net::FaultEvent::Kind::Recover});
  p.faults.push_back({net::FaultEvent::Target::Proxy, 0, 450.0,
                      net::FaultEvent::Kind::Recover});
  return p;
}

/// golden-d: attack and client traffic at once, against bounded
/// DegradeUnsigned service queues. The obfuscation scheduler's step
/// reboots (every 50 units) also exercise dropped_on_reboot accounting.
net::ScenarioPlan plan_d() {
  net::ScenarioPlan p;
  p.name = "golden-d";
  p.keyspace = 128;
  p.attack.probes_per_step = 8.0;
  p.attack.indirect_fraction = 0.5;
  p.horizon_steps = 4;
  p.step_duration = 50.0;
  p.latency = net::LatencySpec::fixed(0.1);
  p.service.enabled = true;
  p.service.request_service = net::LatencySpec::fixed(0.05);
  p.service.response_service = net::LatencySpec::fixed(0.02);
  p.service.verify_cost = 0.15;
  p.service.queue_capacity = 16;
  p.service.degrade_watermark = 8;
  p.service.policy = net::OverloadPolicy::DegradeUnsigned;
  p.traffic.schedule = {net::RatePhase{0.0, 6.0}, net::RatePhase{160.0, 0.0}};
  p.traffic.clients = 3;
  p.traffic.write_fraction = 0.5;
  p.traffic.distinct_keys = 8;
  p.traffic.retry_base = 4.0;
  p.traffic.retry_cap = 16.0;
  p.traffic.retry_jitter = 0.1;
  p.traffic.retry_budget = 4;
  p.traffic.request_deadline = 30.0;
  return p;
}

/// golden-e: the compact client-population plane (PR 8) at 10^4 clients
/// riding with the attack, datagram drops (exercising send_batch's
/// per-frame delivery coins) and a crash -> recover fault schedule. Its
/// golden row was captured on the PR-8 build itself (the plane is new);
/// cells 0-9 keep their earlier values untouched, which is what proves the
/// population plane and the timer-wheel scheduler are inert for plans that
/// do not opt in.
net::ScenarioPlan plan_e() {
  net::ScenarioPlan p;
  p.name = "golden-e";
  p.keyspace = 128;
  p.attack.probes_per_step = 8.0;
  p.attack.indirect_fraction = 0.5;
  p.horizon_steps = 4;
  p.step_duration = 50.0;
  p.latency = net::LatencySpec::uniform(0.02, 0.1);
  p.drop_probability = 0.02;
  p.population.clients = 10'000;
  p.population.request_rate = 0.001;
  p.population.distinct_keys = 8;
  p.population.retry_base = 4.0;
  p.population.retry_cap = 16.0;
  p.population.retry_budget = 4;
  p.population.request_deadline = 30.0;
  p.faults.push_back({net::FaultEvent::Target::Server, 0, 80.0,
                      net::FaultEvent::Kind::Crash});
  p.faults.push_back({net::FaultEvent::Target::Server, 0, 140.0,
                      net::FaultEvent::Kind::Recover});
  return p;
}

std::uint64_t bits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof u);
  return u;
}

struct GoldenCell {
  std::uint64_t trials, compromised, censored;
  std::uint64_t lifetime_mean_bits, lifetime_variance_bits;
  std::uint64_t direct_probes, indirect_probes, crashes_caused, compromises,
      keys_learned;
  std::uint64_t events_executed, blacklisted_sources;
};

// Cells 0-5: captured on the PR-3 (string-keyed message plane) build, in
// cross({S0, S1, S2}, {golden-a, golden-b}) order. Cells 6-8: captured on
// the PR-4 (dense-id plane, pre-MessageView) build, in cross({S0, S1, S2},
// {golden-c}) order, appended so cells 0-5 keep their trial seeds.
constexpr GoldenCell kGolden[9] = {
    {6ull, 3ull, 3ull, 0x40362aaaaaaaaaaaull, 0x405bd77777777776ull, 4256ull,
     0ull, 4227ull, 26ull, 26ull, 50786ull, 0ull},
    {6ull, 2ull, 4ull, 0x4032aaaaaaaaaaaaull, 0x4012aaaaaaaaaaabull, 7001ull,
     0ull, 6964ull, 26ull, 26ull, 43851ull, 0ull},
    {6ull, 5ull, 1ull, 0x4024555555555555ull, 0x405c711111111110ull, 502ull,
     0ull, 497ull, 0ull, 0ull, 12068ull, 0ull},
    {6ull, 5ull, 1ull, 0x401eaaaaaaaaaaaaull, 0x4047bbbbbbbbbbbbull, 767ull,
     0ull, 762ull, 0ull, 0ull, 6936ull, 0ull},
    {6ull, 5ull, 1ull, 0x402faaaaaaaaaaabull, 0x4061122222222222ull, 2495ull,
     389ull, 2469ull, 24ull, 24ull, 41981ull, 0ull},
    {6ull, 1ull, 5ull, 0x4033800000000000ull, 0x3ff7fffffffffffdull, 5332ull,
     465ull, 5306ull, 20ull, 20ull, 53794ull, 18ull},
    {6ull, 2ull, 4ull, 0x4035aaaaaaaaaaabull, 0x4044888888888888ull, 3638ull,
     0ull, 3613ull, 23ull, 23ull, 44009ull, 0ull},
    {6ull, 6ull, 0ull, 0x4023000000000000ull, 0x4051e00000000000ull, 410ull,
     0ull, 404ull, 0ull, 0ull, 7518ull, 0ull},
    {6ull, 3ull, 3ull, 0x4032d55555555556ull, 0x404d7bbbbbbbbbbdull, 2670ull,
     462ull, 2644ull, 22ull, 22ull, 54842ull, 36ull},
};

/// Cell 9 (golden-d on S2): the base aggregates plus the overload-plane
/// traffic row, captured on the PR-6 build.
struct GoldenTraffic {
  std::uint64_t offered, completed, timed_out, gave_up, retries, enqueued,
      served, shed, backpressured, degraded, dropped_on_reboot,
      max_queue_depth;
  std::uint64_t goodput_bits, latency_fingerprint;
};

constexpr GoldenCell kGoldenD = {
    6ull,  0ull,  6ull,      0x4010000000000000ull, 0x0ull, 617ull,
    96ull, 612ull, 5ull,     5ull,                  234856ull, 0ull};
constexpr GoldenTraffic kGoldenDTraffic = {
    5818ull,  5765ull, 53ull,    0ull,  1954ull, 82896ull, 81612ull,
    32904ull, 0ull,    64574ull, 1284ull, 17ull,
    0x403cd33333333333ull, 0x9a153a323828595cull};

/// Cell 10 (golden-e on S2): the base aggregates plus the population-plane
/// row, captured on the PR-8 build.
struct GoldenPopulation {
  std::uint64_t offered, completed, timed_out, gave_up, retries,
      rejected_responses, skipped_busy;
  std::uint64_t latency_fingerprint;
};

constexpr GoldenCell kGoldenE = {
    6ull, 1ull, 5ull,  0x400d555555555556ull, 0x3fe5555555555556ull, 547ull,
    88ull, 541ull, 5ull, 5ull, 1051129ull, 0ull};
constexpr GoldenPopulation kGoldenEPopulation = {
    10974ull, 10083ull, 604ull, 0ull, 5524ull, 0ull, 0ull,
    0x34501036376d4b86ull};

void expect_cell_matches(const CellStats& c, const GoldenCell& g) {
  EXPECT_EQ(c.trials, g.trials);
  EXPECT_EQ(c.compromised, g.compromised);
  EXPECT_EQ(c.censored, g.censored);
  EXPECT_EQ(bits(c.lifetime.mean()), g.lifetime_mean_bits);
  EXPECT_EQ(bits(c.lifetime.variance()), g.lifetime_variance_bits);
  EXPECT_EQ(c.attacker.direct_probes, g.direct_probes);
  EXPECT_EQ(c.attacker.indirect_probes, g.indirect_probes);
  EXPECT_EQ(c.attacker.crashes_caused, g.crashes_caused);
  EXPECT_EQ(c.attacker.compromises, g.compromises);
  EXPECT_EQ(c.attacker.keys_learned, g.keys_learned);
  EXPECT_EQ(c.events_executed, g.events_executed);
  EXPECT_EQ(c.blacklisted_sources, g.blacklisted_sources);
}

void expect_matches_golden(const CampaignResult& result) {
  ASSERT_EQ(result.cells.size(), 11u);
  for (std::size_t i = 0; i < 9; ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    expect_cell_matches(result.cells[i], kGolden[i]);
    // Plans that do not opt into the overload plane must not touch its
    // aggregates at all.
    EXPECT_EQ(result.cells[i].traffic.offered, 0u);
    EXPECT_EQ(result.cells[i].traffic.enqueued, 0u);
    EXPECT_EQ(result.cells[i].traffic.latency.count(), 0u);
  }
  // Likewise the population plane: inert for every pre-PR-8 cell.
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(result.cells[i].population.offered, 0u);
    EXPECT_EQ(result.cells[i].population.latency.count(), 0u);
  }
  {
    SCOPED_TRACE("cell 9 (golden-d)");
    const CellStats& c = result.cells[9];
    expect_cell_matches(c, kGoldenD);
    const TrafficStats& t = c.traffic;
    const GoldenTraffic& g = kGoldenDTraffic;
    EXPECT_EQ(t.offered, g.offered);
    EXPECT_EQ(t.completed, g.completed);
    EXPECT_EQ(t.timed_out, g.timed_out);
    EXPECT_EQ(t.gave_up, g.gave_up);
    EXPECT_EQ(t.retries, g.retries);
    EXPECT_EQ(t.enqueued, g.enqueued);
    EXPECT_EQ(t.served, g.served);
    EXPECT_EQ(t.shed, g.shed);
    EXPECT_EQ(t.backpressured, g.backpressured);
    EXPECT_EQ(t.degraded, g.degraded);
    EXPECT_EQ(t.dropped_on_reboot, g.dropped_on_reboot);
    EXPECT_EQ(t.max_queue_depth, g.max_queue_depth);
    EXPECT_EQ(bits(t.goodput), g.goodput_bits);
    EXPECT_EQ(t.latency.fingerprint(), g.latency_fingerprint);
    // Sanity on the shape, independent of the golden bits: traffic flowed,
    // the degrade watermark was crossed, and step reboots dropped work.
    EXPECT_GT(t.offered, 0u);
    EXPECT_GT(t.completed, 0u);
    EXPECT_GT(t.degraded, 0u);
  }
  {
    SCOPED_TRACE("cell 10 (golden-e)");
    const CellStats& c = result.cells[10];
    expect_cell_matches(c, kGoldenE);
    const core::PopulationStats& p = c.population;
    const GoldenPopulation& g = kGoldenEPopulation;
    EXPECT_EQ(p.offered, g.offered);
    EXPECT_EQ(p.completed, g.completed);
    EXPECT_EQ(p.timed_out, g.timed_out);
    EXPECT_EQ(p.gave_up, g.gave_up);
    EXPECT_EQ(p.retries, g.retries);
    EXPECT_EQ(p.rejected_responses, g.rejected_responses);
    EXPECT_EQ(p.skipped_busy, g.skipped_busy);
    EXPECT_EQ(p.latency.fingerprint(), g.latency_fingerprint);
    // Sanity on the shape, independent of the golden bits: the population
    // generated load, most of it completed, and drops forced retries.
    EXPECT_GT(p.offered, 1000u);
    EXPECT_GT(p.completed, 0u);
    EXPECT_GT(p.retries, 0u);
    EXPECT_EQ(p.rejected_responses, 0u);
  }
}

CampaignResult run_golden_grid(bool pooled) {
  const std::vector<model::SystemKind> systems = {
      model::SystemKind::S0, model::SystemKind::S1, model::SystemKind::S2};
  // golden-c cells are APPENDED (not crossed in) so cells 0-5 keep the
  // (cell, trial) seeds their golden values were captured under.
  std::vector<CampaignCell> cells = cross(systems, {plan_a(), plan_b()});
  for (CampaignCell& extra : cross(systems, {plan_c()})) {
    cells.push_back(std::move(extra));
  }
  // golden-d is likewise appended (cell 9) so cells 0-8 keep their seeds.
  cells.push_back({model::SystemKind::S2, plan_d()});
  // golden-e (population plane, PR 8) is appended as cell 10.
  cells.push_back({model::SystemKind::S2, plan_e()});
  CampaignConfig cfg;
  cfg.trials_per_cell = 6;
  cfg.base_seed = 42;
  cfg.threads = 1;
  cfg.reuse_trial_stacks = pooled;
  return run_campaign(cells, cfg);
}

TEST(DensePlaneGoldenTest, PooledArenaAggregatesMatchStringPlaneGolden) {
  expect_matches_golden(run_golden_grid(/*pooled=*/true));
}

TEST(DensePlaneGoldenTest, FreshStackAggregatesMatchStringPlaneGolden) {
  expect_matches_golden(run_golden_grid(/*pooled=*/false));
}

}  // namespace
}  // namespace fortress::scenario
