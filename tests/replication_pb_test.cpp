#include "replication/pb_replica.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "net/network.hpp"
#include "osl/machine.hpp"
#include "replication/service.hpp"
#include "sim/simulator.hpp"

namespace fortress::replication {
namespace {

/// A bare client endpoint that records signed responses.
class TestClient : public net::Handler {
 public:
  explicit TestClient(net::Network& net, const net::Address& addr)
      : net_(net), addr_(addr) {
    net_.attach(addr_, *this);
  }
  ~TestClient() override { net_.detach(addr_); }

  void on_message(const net::Envelope& env) override {
    auto msg = Message::decode(env.payload);
    if (msg && msg->type == MsgType::Response) responses.push_back(*msg);
  }

  void send_request(const RequestId& rid, const std::string& body,
                    const std::vector<net::Address>& servers) {
    Message msg;
    msg.type = MsgType::Request;
    msg.request_id = rid;
    msg.requester = addr_;
    msg.payload = bytes_of(body);
    for (const auto& s : servers) net_.send(addr_, s, msg.encode());
  }

  /// Distinct sender indices that answered `rid` with `body`.
  std::set<std::uint32_t> responders(const RequestId& rid,
                                     const std::string& body) const {
    std::set<std::uint32_t> out;
    for (const auto& r : responses) {
      if (r.request_id == rid && string_of(r.payload) == body) {
        out.insert(r.sender_index);
      }
    }
    return out;
  }

  std::vector<Message> responses;

 private:
  net::Network& net_;
  net::Address addr_;
};

class PbTest : public ::testing::Test {
 protected:
  static constexpr int kN = 3;

  PbTest()
      : net_(sim_, std::make_unique<net::FixedLatency>(0.5)),
        client_(net_, "client") {
    for (int i = 0; i < kN; ++i) {
      addrs_.push_back("server-" + std::to_string(i));
    }
    PbConfig cfg;
    cfg.replicas = addrs_;
    cfg.heartbeat_interval = 5.0;
    cfg.failover_timeout = 20.0;
    for (int i = 0; i < kN; ++i) {
      machines_.push_back(std::make_unique<osl::Machine>(
          net_, osl::MachineConfig{addrs_[static_cast<std::size_t>(i)], 1 << 10}));
      cfg.index = static_cast<std::uint32_t>(i);
      replicas_.push_back(std::make_unique<PbReplica>(
          sim_, net_, registry_, std::make_unique<KvService>(), cfg));
      machines_.back()->set_application(replicas_.back().get());
    }
  }

  void boot_and_start() {
    for (int i = 0; i < kN; ++i) {
      machines_[static_cast<std::size_t>(i)]->boot(static_cast<osl::RandKey>(i));
      replicas_[static_cast<std::size_t>(i)]->start();
    }
  }

  sim::Simulator sim_;
  net::Network net_;
  crypto::KeyRegistry registry_{123};
  std::vector<net::Address> addrs_;
  std::vector<std::unique_ptr<osl::Machine>> machines_;
  std::vector<std::unique_ptr<PbReplica>> replicas_;
  TestClient client_;
};

TEST_F(PbTest, InitialPrimaryIsIndexZero) {
  boot_and_start();
  EXPECT_TRUE(replicas_[0]->is_primary());
  EXPECT_FALSE(replicas_[1]->is_primary());
  EXPECT_FALSE(replicas_[2]->is_primary());
}

TEST_F(PbTest, AllReplicasSignAndAnswer) {
  boot_and_start();
  RequestId rid{"client", 1};
  client_.send_request(rid, "PUT a 1", addrs_);
  sim_.run_until(30.0);
  // §3: EVERY server (primary + backups) signs and returns the response.
  auto responders = client_.responders(rid, "OK");
  EXPECT_EQ(responders.size(), 3u);
  // All responses carry valid signatures.
  for (const auto& r : client_.responses) {
    EXPECT_TRUE(verify_message(r, registry_));
  }
}

TEST_F(PbTest, BackupsAnswerRequesterLearnedFromStateUpdate) {
  // Regression (dense-id plane): when a request reaches ONLY the primary
  // (dropped datagrams, or a proxy that connected to one server), backups
  // learn the requester exclusively from the StateUpdate's requester field
  // — which must round-trip the sender's real address, not a mangled id.
  boot_and_start();
  RequestId rid{"client", 1};
  client_.send_request(rid, "PUT a 1", {addrs_[0]});  // primary only
  sim_.run_until(30.0);
  auto responders = client_.responders(rid, "OK");
  EXPECT_EQ(responders.size(), 3u);  // backups answered via the update
}

TEST_F(PbTest, OnlyPrimaryExecutes) {
  boot_and_start();
  RequestId rid{"client", 1};
  client_.send_request(rid, "PUT a 1", addrs_);
  sim_.run_until(30.0);
  EXPECT_EQ(replicas_[0]->executed_requests(), 1u);
  EXPECT_EQ(replicas_[1]->executed_requests(), 0u);
  EXPECT_EQ(replicas_[2]->executed_requests(), 0u);
}

TEST_F(PbTest, BackupsReceiveState) {
  boot_and_start();
  client_.send_request({"client", 1}, "PUT a 1", addrs_);
  sim_.run_until(30.0);
  for (const auto& r : replicas_) {
    EXPECT_EQ(r->applied_seq(), 1u);
  }
}

TEST_F(PbTest, DuplicateRequestNotReExecuted) {
  boot_and_start();
  RequestId rid{"client", 1};
  client_.send_request(rid, "PUT a 1", addrs_);
  sim_.run_until(30.0);
  client_.send_request(rid, "PUT a 1", addrs_);  // retry of the same rid
  sim_.run_until(60.0);
  EXPECT_EQ(replicas_[0]->executed_requests(), 1u);
  // But the client got answered again from the cache.
  EXPECT_GE(client_.responders(rid, "OK").size(), 3u);
}

TEST_F(PbTest, SequentialRequestsBuildState) {
  boot_and_start();
  client_.send_request({"client", 1}, "PUT a 1", addrs_);
  sim_.run_until(30.0);
  client_.send_request({"client", 2}, "PUT b 2", addrs_);
  sim_.run_until(60.0);
  client_.send_request({"client", 3}, "GET a", addrs_);
  sim_.run_until(90.0);
  EXPECT_EQ(client_.responders({"client", 3}, "VALUE 1").size(), 3u);
}

TEST_F(PbTest, FailoverAfterPrimaryCrash) {
  boot_and_start();
  client_.send_request({"client", 1}, "PUT a 1", addrs_);
  sim_.run_until(30.0);

  machines_[0]->shutdown();  // primary crashes
  sim_.run_until(120.0);     // failover timeout elapses

  EXPECT_GT(replicas_[1]->view(), 0u);
  EXPECT_TRUE(replicas_[1]->is_primary() || replicas_[2]->is_primary());

  // The new primary serves from the replicated state.
  client_.send_request({"client", 2}, "GET a", addrs_);
  sim_.run_until(180.0);
  auto ok = client_.responders({"client", 2}, "VALUE 1");
  EXPECT_GE(ok.size(), 2u);  // the two survivors
}

TEST_F(PbTest, NonDeterministicServiceStaysConsistent) {
  // Replace services with the non-deterministic token service: PB must keep
  // replicas consistent because only the primary executes.
  machines_.clear();
  replicas_.clear();
  PbConfig cfg;
  cfg.replicas = addrs_;
  for (int i = 0; i < kN; ++i) {
    machines_.push_back(std::make_unique<osl::Machine>(
        net_, osl::MachineConfig{addrs_[static_cast<std::size_t>(i)], 1 << 10}));
    cfg.index = static_cast<std::uint32_t>(i);
    replicas_.push_back(std::make_unique<PbReplica>(
        sim_, net_, registry_,
        std::make_unique<SessionTokenService>(1000 + static_cast<std::uint64_t>(i)),
        cfg));
    machines_.back()->set_application(replicas_.back().get());
  }
  boot_and_start();

  RequestId rid{"client", 1};
  client_.send_request(rid, "TOKEN alice", addrs_);
  sim_.run_until(30.0);
  // All three replicas return the SAME token (the primary's), despite each
  // having a different local RNG — the §1 argument for PB.
  ASSERT_GE(client_.responses.size(), 3u);
  std::set<std::string> bodies;
  for (const auto& r : client_.responses) bodies.insert(string_of(r.payload));
  EXPECT_EQ(bodies.size(), 1u);

  // And the token validates against every replica's state.
  std::string token = (*bodies.begin()).substr(6);
  client_.send_request({"client", 2}, "CHECK alice " + token, addrs_);
  sim_.run_until(60.0);
  EXPECT_EQ(client_.responders({"client", 2}, "VALID").size(), 3u);
}

TEST_F(PbTest, RebootedBackupRejoinsQuietly) {
  boot_and_start();
  client_.send_request({"client", 1}, "PUT a 1", addrs_);
  sim_.run_until(30.0);
  machines_[2]->recover();  // backup reboots (proactive recovery)
  sim_.run_until(35.0);
  // It retained durable state and did not trigger a spurious view change.
  EXPECT_EQ(replicas_[2]->applied_seq(), 1u);
  EXPECT_EQ(replicas_[2]->view(), 0u);
  client_.send_request({"client", 2}, "GET a", addrs_);
  sim_.run_until(70.0);
  EXPECT_EQ(client_.responders({"client", 2}, "VALUE 1").size(), 3u);
}

}  // namespace
}  // namespace fortress::replication
