// Tests for the compact client-population plane: table-size budget,
// request/response round trips through real deployments, determinism,
// pooled-vs-fresh bit-identity, scheduler-kind bit-identity, and the
// 10^5-client scale contract the plane exists for.
#include "core/population.hpp"

#include <gtest/gtest.h>

#include "core/live_system.hpp"
#include "scenario/campaign.hpp"

namespace fortress::scenario {
namespace {

net::ScenarioPlan population_plan(std::uint64_t clients, double rate,
                                  std::uint64_t horizon_steps) {
  net::ScenarioPlan plan;
  plan.name = "population";
  plan.latency = net::LatencySpec::uniform(0.05, 0.2);
  plan.attack.enabled = false;
  plan.horizon_steps = horizon_steps;
  plan.population.clients = clients;
  plan.population.request_rate = rate;
  return plan;
}

void expect_population_equal(const core::PopulationStats& a,
                             const core::PopulationStats& b) {
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.timed_out, b.timed_out);
  EXPECT_EQ(a.gave_up, b.gave_up);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.rejected_responses, b.rejected_responses);
  EXPECT_EQ(a.skipped_busy, b.skipped_busy);
  EXPECT_EQ(a.latency.fingerprint(), b.latency.fingerprint());
}

void expect_outcomes_equal(const TrialOutcome& a, const TrialOutcome& b) {
  EXPECT_EQ(a.compromised, b.compromised);
  EXPECT_EQ(a.lifetime_steps, b.lifetime_steps);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.blacklisted_sources, b.blacklisted_sources);
  EXPECT_EQ(a.attacker.direct_probes, b.attacker.direct_probes);
  EXPECT_EQ(a.traffic.completed, b.traffic.completed);
  EXPECT_EQ(a.traffic.latency.fingerprint(), b.traffic.latency.fingerprint());
  expect_population_equal(a.population, b.population);
}

TEST(PopulationTest, TableRowFitsByteBudget) {
  // The scale contract: the flat-SoA table spends <= 64 bytes per client.
  static_assert(core::ClientPopulation::bytes_per_client() <= 64);

  sim::Simulator sim;
  net::ScenarioPlan plan = population_plan(10'000, 0.001, 10);
  auto live = core::make_live_system(sim, model::SystemKind::S2, plan, 7);
  core::ClientPopulation pop(sim, live->network(), live->registry(),
                             live->directory(), plan.population,
                             /*horizon=*/100.0, /*seed=*/7);
  EXPECT_LE(pop.table_bytes(),
            plan.population.clients * std::uint64_t{64});
  EXPECT_EQ(pop.table_bytes(),
            plan.population.clients *
                core::ClientPopulation::bytes_per_client());
}

TEST(PopulationTest, RequestsCompleteThroughFortifiedDeployment) {
  // S2: population requests traverse proxies and come back double-signed.
  net::ScenarioPlan plan = population_plan(2'000, 0.002, 2);
  TrialOutcome out = run_trial(model::SystemKind::S2, plan, 11);
  EXPECT_GT(out.population.offered, 0u);
  EXPECT_GT(out.population.completed, 0u);
  EXPECT_EQ(out.population.rejected_responses, 0u);
  EXPECT_EQ(out.population.latency.count(), out.population.completed);
  // Every request resolves one way; nothing can end twice.
  EXPECT_LE(out.population.completed + out.population.timed_out +
                out.population.gave_up,
            out.population.offered);
}

TEST(PopulationTest, RequestsCompleteThroughOneTierDeployment) {
  net::ScenarioPlan plan = population_plan(2'000, 0.002, 2);
  TrialOutcome out = run_trial(model::SystemKind::S1, plan, 12);
  EXPECT_GT(out.population.completed, 0u);
  EXPECT_EQ(out.population.rejected_responses, 0u);
}

TEST(PopulationTest, DeterministicInSeed) {
  net::ScenarioPlan plan = population_plan(3'000, 0.002, 2);
  TrialOutcome a = run_trial(model::SystemKind::S2, plan, 21);
  TrialOutcome b = run_trial(model::SystemKind::S2, plan, 21);
  expect_outcomes_equal(a, b);
  TrialOutcome c = run_trial(model::SystemKind::S2, plan, 22);
  EXPECT_NE(a.population.offered, 0u);
  // Different seed, different arrival draws (overwhelmingly likely).
  EXPECT_FALSE(a.population.offered == c.population.offered &&
               a.population.latency.fingerprint() ==
                   c.population.latency.fingerprint());
}

TEST(PopulationTest, PooledTrialsBitIdenticalToFresh) {
  // The arena pools the population table across trials; reset() must make
  // that invisible, including across a shape change mid-sequence.
  net::ScenarioPlan small = population_plan(1'500, 0.002, 2);
  net::ScenarioPlan large = population_plan(4'000, 0.001, 2);
  large.population.cohort_size = 512;

  TrialArena arena;
  for (std::uint64_t seed : {31ull, 32ull, 33ull}) {
    expect_outcomes_equal(arena.run(model::SystemKind::S2, small, seed),
                          run_trial(model::SystemKind::S2, small, seed));
    expect_outcomes_equal(arena.run(model::SystemKind::S2, large, seed),
                          run_trial(model::SystemKind::S2, large, seed));
  }
}

TEST(PopulationTest, WheelAndHeapSchedulersBitIdentical) {
  net::ScenarioPlan plan = population_plan(3'000, 0.002, 2);
  plan.attack.enabled = true;  // exercise the full event mix
  plan.attack.probes_per_step = 8.0;
  plan.keyspace = 1ull << 12;
  for (std::uint64_t seed : {41ull, 42ull}) {
    expect_outcomes_equal(
        run_trial(model::SystemKind::S2, plan, seed, sim::SchedulerKind::Wheel),
        run_trial(model::SystemKind::S2, plan, seed, sim::SchedulerKind::Heap));
  }
}

TEST(PopulationTest, HundredThousandClientsComplete) {
  // The tentpole scale target: a 10^5-client trial under the wheel
  // scheduler completes (in test time) with real request round trips.
  net::ScenarioPlan plan = population_plan(100'000, 0.0003, 1);
  plan.latency = net::LatencySpec::uniform(0.01, 0.05);
  TrialOutcome out =
      run_trial(model::SystemKind::S1, plan, 51, sim::SchedulerKind::Wheel);
  EXPECT_GT(out.population.offered, 1'000u);
  EXPECT_GT(out.population.completed, 0u);
  EXPECT_EQ(out.population.rejected_responses, 0u);
}

TEST(PopulationCampaignTest, SchedulerKindInvariantAcrossThreadsAndPooling) {
  // The differential gate: wheel and heap campaigns produce bit-identical
  // aggregates at 1, 2 and 8 threads, pooled and fresh.
  net::ScenarioPlan plan = population_plan(1'000, 0.002, 30);
  plan.attack.enabled = true;
  plan.attack.probes_per_step = 8.0;
  plan.keyspace = 256;
  plan.faults.push_back({net::FaultEvent::Target::Server, 0, 500.0});
  std::vector<CampaignCell> cells =
      cross({model::SystemKind::S1, model::SystemKind::S2}, {plan});

  CampaignConfig cfg;
  cfg.trials_per_cell = 3;
  cfg.base_seed = 4242;

  cfg.threads = 1;
  cfg.scheduler = sim::SchedulerKind::Wheel;
  const CampaignResult reference = run_campaign(cells, cfg);
  for (unsigned threads : {1u, 2u, 8u}) {
    for (bool pooled : {true, false}) {
      for (sim::SchedulerKind kind :
           {sim::SchedulerKind::Wheel, sim::SchedulerKind::Heap}) {
        cfg.threads = threads;
        cfg.reuse_trial_stacks = pooled;
        cfg.scheduler = kind;
        const CampaignResult got = run_campaign(cells, cfg);
        ASSERT_EQ(got.cells.size(), reference.cells.size());
        EXPECT_EQ(got.total_events, reference.total_events);
        for (std::size_t i = 0; i < reference.cells.size(); ++i) {
          const CellStats& a = reference.cells[i];
          const CellStats& b = got.cells[i];
          EXPECT_EQ(a.compromised, b.compromised);
          EXPECT_EQ(a.events_executed, b.events_executed);
          EXPECT_EQ(a.lifetime.mean(), b.lifetime.mean());
          EXPECT_EQ(a.traffic.latency.fingerprint(),
                    b.traffic.latency.fingerprint());
          expect_population_equal(a.population, b.population);
        }
      }
    }
  }
}

}  // namespace
}  // namespace fortress::scenario
