#include "montecarlo/engine.hpp"

#include <gtest/gtest.h>

#include <utility>

#include "common/check.hpp"
#include "model/step_model.hpp"

namespace fortress::montecarlo {
namespace {

using model::AttackParams;
using model::Granularity;
using model::Obfuscation;
using model::SystemShape;

AttackParams params(double alpha, double kappa = 0.5) {
  AttackParams p;
  p.alpha = alpha;
  p.kappa = kappa;
  return p;
}

McConfig config(std::uint64_t trials, unsigned threads = 1) {
  McConfig cfg;
  cfg.trials = trials;
  cfg.seed = 11;
  cfg.threads = threads;
  cfg.max_steps = 1ull << 40;
  return cfg;
}

TEST(EngineTest, EstimatesS1PoLifetime) {
  auto r = estimate_lifetime(SystemShape::s1(), params(0.01),
                             Obfuscation::Proactive, Granularity::Step,
                             config(50000));
  EXPECT_EQ(r.stats.count(), 50000u);
  EXPECT_EQ(r.censored, 0u);
  EXPECT_NEAR(r.expected_lifetime(), 99.0, 2.0);
  EXPECT_TRUE(r.ci.contains(99.0));
}

TEST(EngineTest, ResultIndependentOfThreadCount) {
  auto seq = estimate_lifetime(SystemShape::s2(), params(0.01),
                               Obfuscation::Proactive, Granularity::Step,
                               config(8000, 1));
  auto par = estimate_lifetime(SystemShape::s2(), params(0.01),
                               Obfuscation::Proactive, Granularity::Step,
                               config(8000, 4));
  // Identical trials (same substreams), identical reduction up to fp
  // associativity in the merge.
  EXPECT_EQ(seq.stats.count(), par.stats.count());
  EXPECT_NEAR(seq.expected_lifetime(), par.expected_lifetime(), 1e-9);
  EXPECT_EQ(seq.censored, par.censored);
  EXPECT_EQ(seq.route_counts, par.route_counts);
}

TEST(EngineTest, ResultBitIdenticalAcrossThreadCounts) {
  // Stronger than statistical agreement: per-trial substreams plus the
  // fixed chunk grid and chunk-index-order reduction make every derived
  // quantity BIT-identical for any thread count, including the
  // floating-point accumulators. Trials chosen to not divide the chunk size
  // so the ragged final chunk is covered too.
  for (auto [obf, gran] :
       {std::pair{Obfuscation::Proactive, Granularity::Step},
        std::pair{Obfuscation::Proactive, Granularity::Probe},
        std::pair{Obfuscation::StartupOnly, Granularity::Step}}) {
    auto t1 = estimate_lifetime(SystemShape::s2(), params(0.01), obf, gran,
                                config(10007, 1));
    auto t3 = estimate_lifetime(SystemShape::s2(), params(0.01), obf, gran,
                                config(10007, 3));
    auto t8 = estimate_lifetime(SystemShape::s2(), params(0.01), obf, gran,
                                config(10007, 8));
    for (const auto* r : {&t3, &t8}) {
      EXPECT_EQ(t1.stats.count(), r->stats.count());
      EXPECT_EQ(t1.stats.mean(), r->stats.mean());
      EXPECT_EQ(t1.stats.variance(), r->stats.variance());
      EXPECT_EQ(t1.stats.min(), r->stats.min());
      EXPECT_EQ(t1.stats.max(), r->stats.max());
      EXPECT_EQ(t1.ci.lo, r->ci.lo);
      EXPECT_EQ(t1.ci.hi, r->ci.hi);
      EXPECT_EQ(t1.censored, r->censored);
      EXPECT_EQ(t1.route_counts, r->route_counts);
    }
  }
}

TEST(EngineTest, RouteFractionSkipsNone) {
  McResult r;
  r.route_counts[model::CompromiseRoute::None] = 100;
  r.route_counts[model::CompromiseRoute::ServerIndirect] = 30;
  r.route_counts[model::CompromiseRoute::AllProxies] = 10;
  // None is not a compromise: fractions are over the 40 compromised trials
  // and None itself reports 0.
  EXPECT_DOUBLE_EQ(r.route_fraction(model::CompromiseRoute::None), 0.0);
  EXPECT_DOUBLE_EQ(r.route_fraction(model::CompromiseRoute::ServerIndirect),
                   0.75);
  EXPECT_DOUBLE_EQ(r.route_fraction(model::CompromiseRoute::AllProxies), 0.25);
}

TEST(EngineTest, SeedChangesSamplesButNotDistribution) {
  McConfig a = config(20000);
  McConfig b = config(20000);
  b.seed = 999;
  auto ra = estimate_lifetime(SystemShape::s1(), params(0.01),
                              Obfuscation::Proactive, Granularity::Step, a);
  auto rb = estimate_lifetime(SystemShape::s1(), params(0.01),
                              Obfuscation::Proactive, Granularity::Step, b);
  EXPECT_NE(ra.expected_lifetime(), rb.expected_lifetime());
  EXPECT_NEAR(ra.expected_lifetime(), rb.expected_lifetime(),
              ra.ci.width() + rb.ci.width());
}

TEST(EngineTest, CensoringCountsReported) {
  McConfig cfg = config(500);
  cfg.max_steps = 10;  // S1PO EL ~ 99: most trials censor
  auto r = estimate_lifetime(SystemShape::s1(), params(0.01),
                             Obfuscation::Proactive, Granularity::Step, cfg);
  EXPECT_GT(r.censored, 400u);
  EXPECT_TRUE(r.any_censored());
  EXPECT_GT(r.route_counts[model::CompromiseRoute::None], 0u);
}

TEST(EngineTest, RouteAttributionForS2) {
  auto r = estimate_lifetime(SystemShape::s2(), params(0.01, 1.0),
                             Obfuscation::Proactive, Granularity::Step,
                             config(30000));
  // With kappa = 1, the indirect route dominates (~alpha vs ~3 alpha^2).
  EXPECT_GT(r.route_fraction(model::CompromiseRoute::ServerIndirect), 0.9);
  double total =
      r.route_fraction(model::CompromiseRoute::ServerIndirect) +
      r.route_fraction(model::CompromiseRoute::ServerViaProxy) +
      r.route_fraction(model::CompromiseRoute::AllProxies);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(EngineTest, RouteFractionEmptyIsZero) {
  McResult empty;
  EXPECT_DOUBLE_EQ(
      empty.route_fraction(model::CompromiseRoute::ServerIndirect), 0.0);
}

TEST(EngineTest, TooFewTrialsViolatesContract) {
  McConfig cfg = config(1);
  EXPECT_THROW(estimate_lifetime(SystemShape::s1(), params(0.01),
                                 Obfuscation::Proactive, Granularity::Step,
                                 cfg),
               ContractViolation);
}

TEST(EngineTest, ThreadsClampedToTrials) {
  McConfig cfg = config(3, 16);
  auto r = estimate_lifetime(SystemShape::s1(), params(0.1),
                             Obfuscation::Proactive, Granularity::Step, cfg);
  EXPECT_EQ(r.stats.count(), 3u);
}

TEST(FeasibilityTest, ShortLifetimesFeasible) {
  McConfig cfg = config(10000);
  EXPECT_TRUE(mc_feasible(100.0, cfg));
}

TEST(FeasibilityTest, AstronomicalLifetimesInfeasible) {
  McConfig cfg = config(10000);
  cfg.max_steps = 1000;
  EXPECT_FALSE(mc_feasible(1e9, cfg));
}

TEST(EngineTest, SoTrialsAreCheapEvenForHugeLifetimes) {
  // SO trials are O(1): even at alpha = 1e-5 (EL ~ 3e4 steps) a large batch
  // must complete quickly and uncensored.
  auto r = estimate_lifetime(SystemShape::s0(), params(1e-5),
                             Obfuscation::StartupOnly, Granularity::Step,
                             config(20000));
  EXPECT_EQ(r.censored, 0u);
  EXPECT_GT(r.expected_lifetime(), 1000.0);
}

}  // namespace
}  // namespace fortress::montecarlo
