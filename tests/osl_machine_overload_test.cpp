// Unit tests of the bounded service queue on osl::Machine: admission,
// policy behaviour at a full queue, degraded marking, control-plane bypass,
// probe absorption ahead of the queue, and reboot semantics.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "crypto/signature.hpp"
#include "net/network.hpp"
#include "osl/machine.hpp"
#include "osl/probe.hpp"
#include "replication/message.hpp"
#include "sim/simulator.hpp"

namespace fortress::osl {
namespace {

Bytes request_wire(const std::string& body, std::uint64_t seq) {
  replication::Message m;
  m.type = replication::MsgType::Request;
  m.request_id = replication::RequestId{"c", seq};
  m.requester = "c";
  m.payload = bytes_of(body);
  return m.encode();
}

Bytes heartbeat_wire() {
  replication::Message m;
  m.type = replication::MsgType::Heartbeat;
  return m.encode();
}

/// Records each dispatch's arrival time, payload and degraded flag.
class ServiceApp : public Application {
 public:
  explicit ServiceApp(sim::Simulator& sim) : sim_(sim) {}

  void handle_message(const net::Envelope& env) override {
    payloads.push_back(Bytes(env.payload.begin(), env.payload.end()));
    times.push_back(sim_.now());
    degraded_flags.push_back(env.degraded);
  }
  void handle_reboot() override { ++reboots; }

  std::vector<Bytes> payloads;
  std::vector<sim::Time> times;
  std::vector<bool> degraded_flags;
  int reboots = 0;

 private:
  sim::Simulator& sim_;
};


/// Stages every signed message's HMAC check through the machine's batched
/// crypto plane and records the verdict handed back at dispatch.
class StagingApp : public Application {
 public:
  explicit StagingApp(const crypto::HmacKey* schedule)
      : schedule_(schedule) {}

  void handle_message(const net::Envelope& env) override {
    verdicts.push_back(env.staged_verdict);
    degraded_flags.push_back(env.degraded);
  }

  std::optional<std::size_t> stage_verify(
      const net::Envelope& env, crypto::BatchVerifier& batch) override {
    auto msg = replication::MessageView::decode(env.payload);
    if (!msg || !msg->signature()) return std::nullopt;
    ++staged_calls;
    Bytes scratch;
    msg->signing_bytes_into(scratch);
    return batch.enqueue(schedule_, scratch, msg->signature()->tag);
  }

  std::vector<std::optional<bool>> verdicts;
  std::vector<bool> degraded_flags;
  int staged_calls = 0;

 private:
  const crypto::HmacKey* schedule_;
};

Bytes signed_response_wire(const crypto::SigningKey& key, std::uint64_t seq,
                           bool corrupt_tag) {
  replication::Message m;
  m.type = replication::MsgType::Response;
  m.request_id = replication::RequestId{"c", seq};
  m.payload = bytes_of("result");
  replication::sign_message(m, key);
  Bytes wire = m.encode();
  // The tag is the 32 bytes immediately before the trailing over-signature
  // presence byte: flipping one bit keeps the framing valid.
  if (corrupt_tag) wire[wire.size() - 2] ^= 0x01;
  return wire;
}

class NullHandler : public net::Handler {
 public:
  void on_message(const net::Envelope&) override {}
};

class MachineOverloadTest : public ::testing::Test {
 protected:
  MachineOverloadTest()
      : net_(sim_, std::make_unique<net::FixedLatency>(1.0)),
        machine_(net_, MachineConfig{"target", 16}),
        app_(sim_) {
    machine_.set_application(&app_);
    machine_.boot(5);
    net_.attach("sender", sender_);
  }

  net::ServiceModel model(net::OverloadPolicy policy,
                          std::uint32_t capacity) const {
    net::ServiceModel m;
    m.enabled = true;
    m.request_service = net::LatencySpec::fixed(1.0);
    m.response_service = net::LatencySpec::fixed(1.0);
    m.other_service = net::LatencySpec::fixed(1.0);
    m.queue_capacity = capacity;
    m.policy = policy;
    return m;
  }

  void send_requests(int n) {
    for (int i = 0; i < n; ++i) {
      net_.send("sender", "target",
                request_wire("GET k" + std::to_string(i),
                             static_cast<std::uint64_t>(i) + 1));
    }
  }

  sim::Simulator sim_;
  net::Network net_;
  Machine machine_;
  ServiceApp app_;
  NullHandler sender_;
};

TEST_F(MachineOverloadTest, DisabledModelDispatchesSynchronously) {
  send_requests(3);
  sim_.run_until(1.0);  // delivery instant; no service delay at all
  EXPECT_EQ(app_.payloads.size(), 3u);
  EXPECT_EQ(machine_.overload().enqueued, 0u);
  EXPECT_EQ(machine_.overload().served, 0u);
  EXPECT_EQ(machine_.service_depth(), 0u);
}

TEST_F(MachineOverloadTest, QueueSerializesDispatches) {
  machine_.configure_service(model(net::OverloadPolicy::DropTail, 8), 1);
  send_requests(3);  // all delivered at t = 1
  sim_.run_until(10.0);
  ASSERT_EQ(app_.times.size(), 3u);
  // One unit of service each, back to back: dispatches at 2, 3, 4.
  EXPECT_DOUBLE_EQ(app_.times[0], 2.0);
  EXPECT_DOUBLE_EQ(app_.times[1], 3.0);
  EXPECT_DOUBLE_EQ(app_.times[2], 4.0);
  EXPECT_EQ(machine_.overload().enqueued, 3u);
  EXPECT_EQ(machine_.overload().served, 3u);
  EXPECT_EQ(machine_.overload().max_depth, 3u);
  EXPECT_EQ(machine_.service_depth(), 0u);
}

TEST_F(MachineOverloadTest, DropTailShedsArrivalsAtFullQueue) {
  machine_.configure_service(model(net::OverloadPolicy::DropTail, 2), 1);
  send_requests(5);  // 1 enters service, 2 wait, 2 shed
  sim_.run_until(20.0);
  EXPECT_EQ(app_.payloads.size(), 3u);
  EXPECT_EQ(machine_.overload().shed, 2u);
  EXPECT_EQ(machine_.overload().served, 3u);
  // FIFO: the three OLDEST arrivals survive.
  EXPECT_EQ(app_.payloads[0], request_wire("GET k0", 1));
  EXPECT_EQ(app_.payloads[1], request_wire("GET k1", 2));
  EXPECT_EQ(app_.payloads[2], request_wire("GET k2", 3));
}

TEST_F(MachineOverloadTest, ShedNewestEvictsYoungestQueuedEntry) {
  machine_.configure_service(model(net::OverloadPolicy::ShedNewest, 2), 1);
  send_requests(5);
  sim_.run_until(20.0);
  // 1 in service; 2,3 queued; 4 evicts 3; 5 evicts 4 => served 1, 2, 5.
  ASSERT_EQ(app_.payloads.size(), 3u);
  EXPECT_EQ(machine_.overload().shed, 2u);
  EXPECT_EQ(app_.payloads[0], request_wire("GET k0", 1));
  EXPECT_EQ(app_.payloads[1], request_wire("GET k1", 2));
  EXPECT_EQ(app_.payloads[2], request_wire("GET k4", 5));
}

TEST_F(MachineOverloadTest, BackpressureParksAndRedelivers) {
  net::ServiceModel m = model(net::OverloadPolicy::Backpressure, 1);
  m.pushback_delay = 5.0;
  machine_.configure_service(m, 1);
  send_requests(3);  // 1 in service, 2 waits, 3 parked
  sim_.run_until(30.0);
  EXPECT_EQ(app_.payloads.size(), 3u);  // nothing lost
  EXPECT_EQ(machine_.overload().backpressured, 1u);
  EXPECT_EQ(machine_.overload().shed, 0u);
  // The parked arrival re-offers at t = 6 (delivery 1 + pushback 5), after
  // both earlier requests finished (t = 2, 3), and serves at t = 7.
  EXPECT_DOUBLE_EQ(app_.times[2], 7.0);
}

TEST_F(MachineOverloadTest, DegradeUnsignedMarksDispatchesAboveWatermark) {
  net::ServiceModel m = model(net::OverloadPolicy::DegradeUnsigned, 8);
  m.degrade_watermark = 2;
  m.verify_cost = 0.5;
  machine_.configure_service(m, 1);
  send_requests(4);
  sim_.run_until(30.0);
  ASSERT_EQ(app_.degraded_flags.size(), 4u);
  // Depth at admission: 0, 1, 2, 3 — the last two cross the watermark.
  EXPECT_FALSE(app_.degraded_flags[0]);
  EXPECT_FALSE(app_.degraded_flags[1]);
  EXPECT_TRUE(app_.degraded_flags[2]);
  EXPECT_TRUE(app_.degraded_flags[3]);
  EXPECT_EQ(machine_.overload().degraded, 2u);
  // Degraded dispatches skip verify_cost: 1.5 + 1.5 + 1.0 + 1.0.
  EXPECT_DOUBLE_EQ(app_.times[0], 2.5);
  EXPECT_DOUBLE_EQ(app_.times[1], 4.0);
  EXPECT_DOUBLE_EQ(app_.times[2], 5.0);
  EXPECT_DOUBLE_EQ(app_.times[3], 6.0);
}

TEST_F(MachineOverloadTest, ControlPlaneBypassesQueueByDefault) {
  machine_.configure_service(model(net::OverloadPolicy::DropTail, 8), 1);
  send_requests(2);
  net_.send("sender", "target", heartbeat_wire());
  sim_.run_until(1.0);  // delivery instant
  // The heartbeat was dispatched synchronously at delivery; both requests
  // are still queued/in service.
  ASSERT_EQ(app_.payloads.size(), 1u);
  EXPECT_EQ(app_.payloads[0], heartbeat_wire());
  sim_.run_until(10.0);
  EXPECT_EQ(app_.payloads.size(), 3u);
}

TEST_F(MachineOverloadTest, ControlPlaneQueuesWhenConfigured) {
  net::ServiceModel m = model(net::OverloadPolicy::DropTail, 8);
  m.queue_control = true;
  machine_.configure_service(m, 1);
  net_.send("sender", "target", heartbeat_wire());
  sim_.run_until(1.0);
  EXPECT_EQ(app_.payloads.size(), 0u);  // queued, not yet served
  sim_.run_until(10.0);
  EXPECT_EQ(app_.payloads.size(), 1u);
  EXPECT_EQ(machine_.overload().enqueued, 1u);
}

TEST_F(MachineOverloadTest, ProbesAbsorbedBeforeQueue) {
  machine_.configure_service(model(net::OverloadPolicy::DropTail, 8), 1);
  net_.send("sender", "target", encode_probe(4));  // wrong key: child crash
  sim_.run_until(5.0);
  EXPECT_EQ(machine_.child_crashes(), 1u);
  EXPECT_EQ(machine_.overload().enqueued, 0u);
  EXPECT_TRUE(app_.payloads.empty());
}


TEST_F(MachineOverloadTest, StagedVerdictsDeliveredAtDispatch) {
  crypto::KeyRegistry registry(3);
  crypto::SigningKey server = registry.enroll("server-0");
  StagingApp app(registry.schedule_for("server-0"));
  machine_.set_application(&app);
  machine_.configure_service(model(net::OverloadPolicy::DropTail, 16), 1);
  for (int i = 0; i < 12; ++i) {
    net_.send("sender", "target",
              signed_response_wire(server, static_cast<std::uint64_t>(i) + 1,
                                   i % 3 == 2));
  }
  sim_.run_until(60.0);
  ASSERT_EQ(app.verdicts.size(), 12u);
  EXPECT_EQ(app.staged_calls, 12);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(app.verdicts[static_cast<std::size_t>(i)].has_value())
        << "dispatch " << i;
    // Corrupted tags (every third message) must come back rejected.
    EXPECT_EQ(*app.verdicts[static_cast<std::size_t>(i)], i % 3 != 2)
        << "dispatch " << i;
  }
}

TEST_F(MachineOverloadTest, DegradedAdmissionsAreNeverStaged) {
  crypto::KeyRegistry registry(3);
  crypto::SigningKey server = registry.enroll("server-0");
  StagingApp app(registry.schedule_for("server-0"));
  machine_.set_application(&app);
  net::ServiceModel m = model(net::OverloadPolicy::DegradeUnsigned, 8);
  m.degrade_watermark = 2;
  machine_.configure_service(m, 1);
  for (int i = 0; i < 4; ++i) {
    net_.send("sender", "target",
              signed_response_wire(server, static_cast<std::uint64_t>(i) + 1,
                                   false));
  }
  sim_.run_until(30.0);
  ASSERT_EQ(app.verdicts.size(), 4u);
  // Depth at admission: 0, 1, 2, 3 — the last two cross the watermark and
  // dispatch degraded, so stage_verify never ran for them.
  EXPECT_EQ(app.staged_calls, 2);
  EXPECT_TRUE(app.verdicts[0].has_value());
  EXPECT_TRUE(app.verdicts[1].has_value());
  EXPECT_TRUE(*app.verdicts[0]);
  EXPECT_TRUE(*app.verdicts[1]);
  EXPECT_FALSE(app.verdicts[2].has_value());
  EXPECT_FALSE(app.verdicts[3].has_value());
  EXPECT_TRUE(app.degraded_flags[2]);
  EXPECT_TRUE(app.degraded_flags[3]);
}

TEST_F(MachineOverloadTest, UnstagedDispatchesCarryNoVerdict) {
  crypto::KeyRegistry registry(3);
  crypto::SigningKey server = registry.enroll("server-0");
  StagingApp app(registry.schedule_for("server-0"));
  machine_.set_application(&app);
  machine_.configure_service(model(net::OverloadPolicy::DropTail, 8), 1);
  send_requests(2);  // unsigned requests: stage_verify declines them
  sim_.run_until(10.0);
  ASSERT_EQ(app.verdicts.size(), 2u);
  EXPECT_EQ(app.staged_calls, 0);
  EXPECT_FALSE(app.verdicts[0].has_value());
  EXPECT_FALSE(app.verdicts[1].has_value());
}

TEST_F(MachineOverloadTest, RebootDropsQueuedWork) {
  machine_.configure_service(model(net::OverloadPolicy::DropTail, 8), 1);
  send_requests(4);
  sim_.schedule_at(1.5, [this] { machine_.recover(); });
  sim_.run_until(30.0);
  // At t = 1.5 one request is in service (finishes at 2) and three wait;
  // all four die with the reboot.
  EXPECT_EQ(app_.payloads.size(), 0u);
  EXPECT_EQ(machine_.overload().dropped_on_reboot, 4u);
  EXPECT_EQ(machine_.service_depth(), 0u);
  // The machine still serves fresh work after the reboot.
  send_requests(1);
  sim_.run_until(60.0);
  EXPECT_EQ(app_.payloads.size(), 1u);
  EXPECT_EQ(machine_.overload().served, 1u);
}

TEST_F(MachineOverloadTest, RebootInvalidatesParkedBackpressureWork) {
  net::ServiceModel m = model(net::OverloadPolicy::Backpressure, 1);
  m.pushback_delay = 5.0;
  machine_.configure_service(m, 1);
  send_requests(3);  // third is parked until t = 6
  sim_.schedule_at(4.0, [this] { machine_.recover(); });
  sim_.run_until(30.0);
  // Served before the reboot: requests 1 (t=2) and 2 (t=3). The parked
  // third belongs to the dead incarnation and is dropped at its re-offer.
  EXPECT_EQ(app_.payloads.size(), 2u);
  EXPECT_EQ(machine_.overload().backpressured, 1u);
  EXPECT_EQ(machine_.overload().dropped_on_reboot, 1u);
}

TEST_F(MachineOverloadTest, ResetClearsServiceState) {
  machine_.configure_service(model(net::OverloadPolicy::DropTail, 8), 1);
  send_requests(3);
  sim_.run_until(2.5);  // one served, two pending
  machine_.reset(16);
  EXPECT_EQ(machine_.service_depth(), 0u);
  EXPECT_EQ(machine_.overload().enqueued, 0u);
  EXPECT_EQ(machine_.overload().served, 0u);
}

}  // namespace
}  // namespace fortress::osl
