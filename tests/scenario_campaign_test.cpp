// Tests for the scenario campaign runner: determinism, thread-count
// invariance of aggregated statistics, fault schedule behaviour, and the
// live-vs-analytic cross-validation the campaign machinery exists for.
#include "scenario/campaign.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "analysis/markov.hpp"
#include "core/live_system.hpp"
#include "exec/thread_pool.hpp"
#include "replication/service.hpp"

namespace fortress::scenario {
namespace {

net::ScenarioPlan fast_plan(std::uint64_t chi, double omega, double kappa,
                            std::uint64_t horizon) {
  net::ScenarioPlan plan;
  plan.keyspace = chi;
  plan.attack.probes_per_step = omega;
  plan.attack.indirect_fraction = kappa;
  plan.horizon_steps = horizon;
  plan.proxy_blacklist = false;
  plan.latency = net::LatencySpec::uniform(0.01, 0.02);
  return plan;
}

TEST(RunTrialTest, DeterministicInSeed) {
  net::ScenarioPlan plan = fast_plan(64, 8.0, 0.5, 60);
  TrialOutcome a = run_trial(model::SystemKind::S2, plan, 99);
  TrialOutcome b = run_trial(model::SystemKind::S2, plan, 99);
  EXPECT_EQ(a.compromised, b.compromised);
  EXPECT_EQ(a.lifetime_steps, b.lifetime_steps);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.attacker.direct_probes, b.attacker.direct_probes);
  EXPECT_EQ(a.attacker.indirect_probes, b.attacker.indirect_probes);
  EXPECT_EQ(a.attacker.compromises, b.attacker.compromises);
}

TEST(RunTrialTest, SurvivesWithoutAttack) {
  net::ScenarioPlan plan = fast_plan(64, 8.0, 0.5, 10);
  plan.attack.enabled = false;
  TrialOutcome out = run_trial(model::SystemKind::S1, plan, 3);
  EXPECT_FALSE(out.compromised);
  EXPECT_EQ(out.lifetime_steps, plan.horizon_steps);
  EXPECT_EQ(out.attacker.direct_probes, 0u);
  EXPECT_GT(out.events_executed, 0u);
}

TEST(RunTrialTest, FaultsOnMissingTiersAreIgnored) {
  // S1 has no proxy tier, and index 99 is out of range everywhere; the plan
  // must still run cleanly on every class.
  net::ScenarioPlan plan = fast_plan(64, 8.0, 0.5, 10);
  plan.faults.push_back({net::FaultEvent::Target::Proxy, 0, 150.0});
  plan.faults.push_back({net::FaultEvent::Target::Server, 99, 250.0});
  plan.faults.push_back({net::FaultEvent::Target::Server, 0, 350.0});
  for (model::SystemKind kind :
       {model::SystemKind::S0, model::SystemKind::S1, model::SystemKind::S2}) {
    TrialOutcome out = run_trial(kind, plan, 5);
    EXPECT_LE(out.lifetime_steps, plan.horizon_steps);
  }
}

TEST(RunTrialTest, ServerFaultRebootKeepsKey) {
  // A FaultEvent models crash + restart with the current key (proactive
  // recovery, not re-randomization).
  sim::Simulator sim;
  net::ScenarioPlan plan = fast_plan(64, 8.0, 0.5, 10);
  plan.attack.enabled = false;
  auto live = core::make_live_system(sim, model::SystemKind::S1, plan, 11);
  live->start();
  sim.run_until(50.0);
  osl::Machine* target = live->fault_target(net::FaultEvent::Target::Server, 0);
  ASSERT_NE(target, nullptr);
  const osl::RandKey key_before = target->key();
  target->recover();
  EXPECT_EQ(target->key(), key_before);
  EXPECT_EQ(live->fault_target(net::FaultEvent::Target::Server, 99), nullptr);
  EXPECT_EQ(live->fault_target(net::FaultEvent::Target::Proxy, 0), nullptr);
}

TEST(RunTrialTest, IndirectOnlyAttackerSendsNoDirectProbes) {
  // direct_enabled = false models the detection-study adversary: all of its
  // traffic must traverse the proxy tier.
  net::ScenarioPlan plan = fast_plan(64, 8.0, 1.0, 20);
  plan.attack.direct_enabled = false;
  TrialOutcome out = run_trial(model::SystemKind::S2, plan, 17);
  EXPECT_EQ(out.attacker.direct_probes, 0u);
  EXPECT_GT(out.attacker.indirect_probes, 0u);
}

TEST(RunTrialTest, DetectionBlacklistsIndirectOnlyAttacker) {
  // With proxy detection on, the indirect-only attacker's identities must
  // end up blacklisted — the observable evidence detection fired.
  net::ScenarioPlan plan = fast_plan(64, 8.0, 1.0, 20);
  plan.attack.direct_enabled = false;
  plan.proxy_blacklist = true;
  plan.detection_threshold = 5;
  TrialOutcome out = run_trial(model::SystemKind::S2, plan, 17);
  EXPECT_GT(out.blacklisted_sources, 0u);
  // S1 has no detection tier: the hook reports zero.
  plan.name = "s1-no-detection";
  TrialOutcome s1 = run_trial(model::SystemKind::S1, plan, 17);
  EXPECT_EQ(s1.blacklisted_sources, 0u);
}

TEST(TrialSeedTest, NoCollisionsOnDenseGrid) {
  // The old XOR-combine derivation let distinct (cell, trial) pairs feed
  // identical mix states, silently duplicating whole live trials. The
  // chained-absorption derivation must be collision-free across a dense
  // grid far larger than any real campaign's.
  std::set<std::uint64_t> seen;
  constexpr std::uint64_t kCells = 128;
  constexpr std::uint64_t kTrials = 512;
  for (std::uint64_t c = 0; c < kCells; ++c) {
    for (std::uint64_t t = 0; t < kTrials; ++t) {
      seen.insert(trial_seed(42, c, t));
    }
  }
  EXPECT_EQ(seen.size(), kCells * kTrials);
  // The streams must actually depend on the base seed too.
  EXPECT_NE(trial_seed(1, 0, 0), trial_seed(2, 0, 0));
  // Regression shape from the old scheme: pairs constructed so that
  // cell*k ^ trial collides are now distinct.
  constexpr std::uint64_t k = 0x9e3779b97f4a7c15ULL;
  const std::uint64_t a = 3 * k ^ 7;  // (cell 3, trial 7)
  EXPECT_NE(trial_seed(a, 3, 7), trial_seed(a, 0, 0));
}

TEST(RunTrialTest, CrashFaultKeepsMachineDownUntilRecover) {
  // chi = 8 and omega = 16/step: an attacked S1 falls almost immediately —
  // unless its probed server is crashed for the whole run.
  net::ScenarioPlan plan = fast_plan(8, 16.0, 0.0, 30);
  const TrialOutcome up = run_trial(model::SystemKind::S1, plan, 7);
  ASSERT_TRUE(up.compromised);

  // Crash the probed machine (S1's surface is server 0) before the attack
  // starts and never revive it: the attacker's probes find nothing to
  // connect to for the entire horizon.
  net::ScenarioPlan crashed = plan;
  crashed.faults.push_back({net::FaultEvent::Target::Server, 0, 1.0,
                            net::FaultEvent::Kind::Crash});
  const TrialOutcome down = run_trial(model::SystemKind::S1, crashed, 7);
  EXPECT_FALSE(down.compromised);
  EXPECT_EQ(down.lifetime_steps, crashed.horizon_steps);

  // Now schedule the recovery half: the machine comes back up mid-run
  // (with the key it went down with) and the attack resumes and succeeds —
  // the crash/recovery schedule is expressible end to end.
  net::ScenarioPlan revived = crashed;
  revived.faults.push_back({net::FaultEvent::Target::Server, 0, 1200.0,
                            net::FaultEvent::Kind::Recover});
  const TrialOutcome back = run_trial(model::SystemKind::S1, revived, 7);
  EXPECT_TRUE(back.compromised);
  // Compromise can only have happened after the revival at step 12.
  EXPECT_GE(back.lifetime_steps, 12u);
}

TEST(RunTrialTest, CrashEndsAttackerControlAndReviveRedials) {
  // Crash semantics at the machine layer: the process dies, so the
  // attacker's live control dies with it; revive() restarts it with the
  // SAME key and tells the application (a proxy must re-dial its servers,
  // not trust dead connections).
  sim::Simulator sim;
  net::ScenarioPlan plan = fast_plan(64, 8.0, 0.5, 10);
  plan.attack.enabled = false;
  auto live = core::make_live_system(sim, model::SystemKind::S2, plan, 21);
  live->start();
  sim.run_until(50.0);
  osl::Machine* proxy = live->fault_target(net::FaultEvent::Target::Proxy, 0);
  ASSERT_NE(proxy, nullptr);
  const osl::RandKey key = proxy->key();
  proxy->shutdown();
  EXPECT_FALSE(proxy->booted());
  EXPECT_FALSE(proxy->compromised());
  sim.run_until(100.0);
  proxy->revive();
  EXPECT_TRUE(proxy->booted());
  EXPECT_EQ(proxy->key(), key);
  // handle_reboot fired: the proxy re-dials, so by the next quiescent
  // point it has live connections to the server tier again.
  sim.run_until(150.0);
  EXPECT_GT(live->network().open_connections(), 0u);
}

TEST(RunTrialTest, RecoverOnBootedMachineIsOldBehaviour) {
  // A default-kind FaultEvent on a live machine is a crash + restart with
  // the current key — exactly what plans before Kind existed meant.
  net::ScenarioPlan plan = fast_plan(64, 8.0, 0.5, 10);
  plan.attack.enabled = false;
  plan.faults.push_back({net::FaultEvent::Target::Server, 0, 350.0});
  const TrialOutcome out = run_trial(model::SystemKind::S1, plan, 5);
  EXPECT_FALSE(out.compromised);
  EXPECT_EQ(out.lifetime_steps, plan.horizon_steps);
}

TEST(RunTrialTest, FaultAtHorizonBoundaryNeverFires) {
  // The run stops AT the horizon, so a fault scheduled exactly there can
  // never execute: the campaign must not even schedule it. A trial with
  // such a fault is bit-identical to one with no faults at all. (Attack
  // disabled so every run reaches the horizon and the just-inside fault
  // below actually fires.)
  net::ScenarioPlan plan = fast_plan(8, 16.0, 0.0, 30);
  plan.attack.enabled = false;
  net::ScenarioPlan boundary = plan;
  const sim::Time horizon =
      plan.step_duration * static_cast<sim::Time>(plan.horizon_steps);
  boundary.faults.push_back({net::FaultEvent::Target::Server, 0, horizon,
                             net::FaultEvent::Kind::Crash});
  boundary.faults.push_back({net::FaultEvent::Target::Server, 0,
                             horizon + 500.0, net::FaultEvent::Kind::Crash});
  const TrialOutcome a = run_trial(model::SystemKind::S1, plan, 11);
  const TrialOutcome b = run_trial(model::SystemKind::S1, boundary, 11);
  EXPECT_EQ(a.compromised, b.compromised);
  EXPECT_EQ(a.lifetime_steps, b.lifetime_steps);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.attacker.direct_probes, b.attacker.direct_probes);

  // One tick inside the horizon, the same fault IS scheduled (and, here,
  // changes the outcome by taking the probed server down at the end).
  net::ScenarioPlan inside = plan;
  inside.faults.push_back({net::FaultEvent::Target::Server, 0, horizon - 0.5,
                           net::FaultEvent::Kind::Crash});
  const TrialOutcome c = run_trial(model::SystemKind::S1, inside, 11);
  EXPECT_NE(a.events_executed, c.events_executed);
}

TEST(CampaignTest, TopologyHooksPerClass) {
  sim::Simulator sim;
  net::ScenarioPlan plan = fast_plan(64, 8.0, 0.5, 10);
  plan.n_servers = 3;
  plan.n_proxies = 4;

  auto s1 = core::make_live_system(sim, model::SystemKind::S1, plan, 1);
  // One shared key across the S1 tier => exactly one direct channel
  // (Definition 2); the primary stands in for the tier.
  EXPECT_EQ(s1->direct_attack_surface().size(), 1u);
  EXPECT_TRUE(s1->launchpad_machines().empty());
  EXPECT_TRUE(s1->hidden_server_addresses().empty());

  sim::Simulator sim2;
  auto s2 = core::make_live_system(sim2, model::SystemKind::S2, plan, 1);
  EXPECT_EQ(s2->direct_attack_surface().size(), 4u);  // proxies, not servers
  EXPECT_EQ(s2->launchpad_machines().size(), 4u);
  EXPECT_EQ(s2->hidden_server_addresses().size(), 3u);
  EXPECT_NE(s2->fault_target(net::FaultEvent::Target::Proxy, 3), nullptr);

  sim::Simulator sim3;
  auto s0 = core::make_live_system(sim3, model::SystemKind::S0, plan, 1);
  EXPECT_EQ(s0->direct_attack_surface().size(), 4u);  // 3f+1 with f=1
}

TEST(CampaignTest, AggregatesBitIdenticalForAnyThreadCount) {
  std::vector<net::ScenarioPlan> plans = {fast_plan(64, 8.0, 0.5, 40),
                                          fast_plan(128, 8.0, 0.25, 40)};
  plans[1].name = "quarter-kappa";
  std::vector<CampaignCell> cells =
      cross({model::SystemKind::S1, model::SystemKind::S2}, plans);

  CampaignConfig cfg;
  cfg.trials_per_cell = 5;
  cfg.base_seed = 31337;

  cfg.threads = 1;
  CampaignResult serial = run_campaign(cells, cfg);
  for (unsigned threads : {3u, 8u}) {
    cfg.threads = threads;
    CampaignResult parallel = run_campaign(cells, cfg);
    ASSERT_EQ(parallel.cells.size(), serial.cells.size());
    EXPECT_EQ(parallel.total_trials, serial.total_trials);
    EXPECT_EQ(parallel.total_events, serial.total_events);
    for (std::size_t i = 0; i < serial.cells.size(); ++i) {
      const CellStats& a = serial.cells[i];
      const CellStats& b = parallel.cells[i];
      EXPECT_EQ(a.plan_name, b.plan_name);
      EXPECT_EQ(a.compromised, b.compromised);
      EXPECT_EQ(a.censored, b.censored);
      EXPECT_EQ(a.events_executed, b.events_executed);
      EXPECT_EQ(a.attacker.direct_probes, b.attacker.direct_probes);
      EXPECT_EQ(a.attacker.crashes_caused, b.attacker.crashes_caused);
      EXPECT_EQ(a.attacker.keys_learned, b.attacker.keys_learned);
      // Bit-identical, not just close:
      EXPECT_EQ(a.lifetime.mean(), b.lifetime.mean());
      EXPECT_EQ(a.lifetime.variance(), b.lifetime.variance());
      EXPECT_EQ(a.lifetime_ci.lo, b.lifetime_ci.lo);
      EXPECT_EQ(a.lifetime_ci.hi, b.lifetime_ci.hi);
    }
  }
}

void expect_outcomes_equal(const TrialOutcome& a, const TrialOutcome& b) {
  EXPECT_EQ(a.compromised, b.compromised);
  EXPECT_EQ(a.lifetime_steps, b.lifetime_steps);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.blacklisted_sources, b.blacklisted_sources);
  EXPECT_EQ(a.attacker.direct_probes, b.attacker.direct_probes);
  EXPECT_EQ(a.attacker.indirect_probes, b.attacker.indirect_probes);
  EXPECT_EQ(a.attacker.crashes_caused, b.attacker.crashes_caused);
  EXPECT_EQ(a.attacker.compromises, b.attacker.compromises);
  EXPECT_EQ(a.attacker.keys_learned, b.attacker.keys_learned);
}

TEST(TrialArenaTest, ArenaTrialsMatchFreshTrials) {
  // The whole point of the pooled path: reset-and-reuse must be
  // indistinguishable from reconstruction, trial for trial, across system
  // classes, plan knobs (keyspace, detection, faults) and seeds — including
  // the rebuild paths when the structural shape changes.
  net::ScenarioPlan small = fast_plan(64, 8.0, 0.5, 30);
  net::ScenarioPlan big = fast_plan(128, 8.0, 0.25, 30);
  big.name = "big";
  big.proxy_blacklist = true;
  big.detection_threshold = 5;
  big.faults.push_back({net::FaultEvent::Target::Server, 1, 450.0,
                        net::FaultEvent::Kind::Recover});
  net::ScenarioPlan wide = fast_plan(64, 8.0, 0.5, 20);
  wide.name = "wide";
  wide.n_proxies = 4;
  net::ScenarioPlan indirect_only = fast_plan(64, 8.0, 1.0, 20);
  indirect_only.name = "indirect-only";
  indirect_only.attack.direct_enabled = false;
  indirect_only.attack.sybil_identities = 3;
  net::ScenarioPlan direct_only = fast_plan(64, 8.0, 0.0, 20);
  direct_only.name = "direct-only";  // kappa 0: indirect never wired
  net::ScenarioPlan quiet = fast_plan(64, 8.0, 0.5, 10);
  quiet.name = "quiet";
  quiet.attack.enabled = false;

  struct Case {
    model::SystemKind system;
    const net::ScenarioPlan* plan;
    std::uint64_t seed;
  };
  const Case sequence[] = {
      {model::SystemKind::S2, &small, 11},  // build
      {model::SystemKind::S2, &small, 12},  // reuse, same plan
      {model::SystemKind::S2, &big, 13},    // reuse, different knobs
      {model::SystemKind::S1, &small, 14},  // rebuild: class change
      {model::SystemKind::S1, &big, 15},    // reuse
      {model::SystemKind::S2, &wide, 16},   // rebuild: tier size change
      {model::SystemKind::S0, &small, 17},  // rebuild: SMR quorum
      {model::SystemKind::S0, &small, 18},  // reuse (state transfer etc.)
      {model::SystemKind::S2, &small, 11},  // back to the first shape
      // Attacker-shape transitions on a reused deployment: the pooled
      // attacker must rebuild (direct/sybil changes) or reset without the
      // indirect draw (kappa 0), and survive an attackless trial between.
      {model::SystemKind::S2, &indirect_only, 19},
      {model::SystemKind::S2, &indirect_only, 20},  // attacker reuse
      {model::SystemKind::S2, &direct_only, 21},    // attacker rebuild
      {model::SystemKind::S2, &quiet, 22},          // no attacker at all
      {model::SystemKind::S2, &small, 23},          // attacker rebuild again
      {model::SystemKind::S2, &direct_only, 24},  // reuse, indirect inactive
  };

  TrialArena arena;
  for (const Case& c : sequence) {
    SCOPED_TRACE(testing::Message() << "system " << static_cast<int>(c.system)
                                    << " plan " << c.plan->name << " seed "
                                    << c.seed);
    const TrialOutcome pooled = arena.run(c.system, *c.plan, c.seed);
    const TrialOutcome fresh = run_trial(c.system, *c.plan, c.seed);
    expect_outcomes_equal(pooled, fresh);
  }
}

TEST(CampaignTest, PooledAndFreshStacksBitIdentical) {
  std::vector<net::ScenarioPlan> plans = {fast_plan(64, 8.0, 0.5, 40),
                                          fast_plan(128, 8.0, 0.25, 40)};
  plans[1].name = "quarter-kappa";
  plans[1].proxy_blacklist = true;
  plans[1].detection_threshold = 6;
  std::vector<CampaignCell> cells =
      cross({model::SystemKind::S0, model::SystemKind::S1,
             model::SystemKind::S2},
            plans);

  CampaignConfig cfg;
  cfg.trials_per_cell = 5;
  cfg.base_seed = 99;
  cfg.threads = 3;
  cfg.reuse_trial_stacks = false;
  const CampaignResult fresh = run_campaign(cells, cfg);
  cfg.reuse_trial_stacks = true;
  const CampaignResult pooled = run_campaign(cells, cfg);

  ASSERT_EQ(pooled.cells.size(), fresh.cells.size());
  EXPECT_EQ(pooled.total_trials, fresh.total_trials);
  EXPECT_EQ(pooled.total_events, fresh.total_events);
  for (std::size_t i = 0; i < fresh.cells.size(); ++i) {
    const CellStats& a = fresh.cells[i];
    const CellStats& b = pooled.cells[i];
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.compromised, b.compromised);
    EXPECT_EQ(a.censored, b.censored);
    EXPECT_EQ(a.events_executed, b.events_executed);
    EXPECT_EQ(a.blacklisted_sources, b.blacklisted_sources);
    EXPECT_EQ(a.attacker.direct_probes, b.attacker.direct_probes);
    EXPECT_EQ(a.lifetime.mean(), b.lifetime.mean());
    EXPECT_EQ(a.lifetime.variance(), b.lifetime.variance());
  }
}

TEST(AdaptiveCampaignTest, AggregatesBitIdenticalForAnyThreadCount) {
  // The tentpole determinism contract: for fixed (base_seed, config) the
  // executed (cell, trial) seed set — and so every aggregate AND the
  // per-cell trial counts the stopping rule produced — is identical at 1,
  // 2 and 8 threads.
  std::vector<net::ScenarioPlan> plans = {fast_plan(64, 8.0, 0.5, 40),
                                          fast_plan(128, 8.0, 0.25, 60)};
  plans[1].name = "quarter-kappa";
  std::vector<CampaignCell> cells =
      cross({model::SystemKind::S1, model::SystemKind::S2}, plans);

  CampaignConfig cfg;
  cfg.base_seed = 31337;
  cfg.adaptive.enabled = true;
  cfg.adaptive.round_trials = 4;
  cfg.adaptive.target_rel_ci = 0.15;
  cfg.adaptive.max_trials_per_cell = 24;

  cfg.threads = 1;
  const CampaignResult serial = run_campaign(cells, cfg);
  for (unsigned threads : {2u, 8u}) {
    cfg.threads = threads;
    const CampaignResult parallel = run_campaign(cells, cfg);
    ASSERT_EQ(parallel.cells.size(), serial.cells.size());
    EXPECT_EQ(parallel.total_trials, serial.total_trials);
    EXPECT_EQ(parallel.total_events, serial.total_events);
    for (std::size_t i = 0; i < serial.cells.size(); ++i) {
      const CellStats& a = serial.cells[i];
      const CellStats& b = parallel.cells[i];
      EXPECT_EQ(a.trials, b.trials) << "cell " << i << " @" << threads;
      EXPECT_EQ(a.rounds, b.rounds);
      EXPECT_EQ(a.compromised, b.compromised);
      EXPECT_EQ(a.censored, b.censored);
      EXPECT_EQ(a.events_executed, b.events_executed);
      EXPECT_EQ(a.attacker.direct_probes, b.attacker.direct_probes);
      EXPECT_EQ(a.attacker.keys_learned, b.attacker.keys_learned);
      // Bit-identical, not just close:
      EXPECT_EQ(a.lifetime.mean(), b.lifetime.mean());
      EXPECT_EQ(a.lifetime.variance(), b.lifetime.variance());
      EXPECT_EQ(a.lifetime_ci.lo, b.lifetime_ci.lo);
      EXPECT_EQ(a.lifetime_ci.hi, b.lifetime_ci.hi);
    }
  }
}

TEST(AdaptiveCampaignTest, LowVarianceCellStopsEarlyAndMeetsTarget) {
  // Cell 0: attack disabled — every trial is censored at the horizon, so
  // the lifetime sample has zero variance and the cell must close after
  // its first round with its CI (width 0) trivially inside the target.
  // Cell 1: a genuinely stochastic attacked cell — it needs more rounds.
  net::ScenarioPlan calm = fast_plan(64, 8.0, 0.5, 20);
  calm.name = "calm";
  calm.attack.enabled = false;
  net::ScenarioPlan noisy = fast_plan(512, 8.0, 0.5, 80);
  noisy.name = "noisy";
  std::vector<CampaignCell> cells = {{model::SystemKind::S1, calm},
                                     {model::SystemKind::S1, noisy}};

  CampaignConfig cfg;
  cfg.base_seed = 7;
  cfg.adaptive.enabled = true;
  cfg.adaptive.round_trials = 6;
  cfg.adaptive.target_rel_ci = 0.05;
  cfg.adaptive.max_trials_per_cell = 120;
  const CampaignResult r = run_campaign(cells, cfg);

  const CellStats& low = r.cells[0];
  const CellStats& high = r.cells[1];
  EXPECT_EQ(low.trials, cfg.adaptive.round_trials);
  EXPECT_EQ(low.rounds, 1u);
  const double low_half = (low.lifetime_ci.hi - low.lifetime_ci.lo) / 2.0;
  EXPECT_LE(low_half, cfg.adaptive.target_rel_ci * low.mean_lifetime());
  EXPECT_GT(high.trials, low.trials);
  EXPECT_GT(high.rounds, 1u);
  // The high-variance cell either met the target or ran to the cap.
  const double high_half = (high.lifetime_ci.hi - high.lifetime_ci.lo) / 2.0;
  EXPECT_TRUE(high_half <=
                  cfg.adaptive.target_rel_ci * high.mean_lifetime() ||
              high.trials == cfg.adaptive.max_trials_per_cell);
}

TEST(AdaptiveCampaignTest, FixedModeMatchesLegacySingleRound) {
  // adaptive.enabled = false must reproduce the fixed-budget behaviour:
  // every cell runs exactly trials_per_cell trials in one round.
  std::vector<CampaignCell> cells = {
      {model::SystemKind::S1, fast_plan(64, 8.0, 0.5, 20)}};
  CampaignConfig cfg;
  cfg.trials_per_cell = 9;
  const CampaignResult r = run_campaign(cells, cfg);
  EXPECT_EQ(r.total_trials, 9u);
  EXPECT_EQ(r.cells[0].trials, 9u);
  EXPECT_EQ(r.cells[0].rounds, 1u);
}

TEST(AdaptiveCampaignTest, CapClosedCellStillReportsValidCI) {
  // A cell that never meets its target closes at the cap — its reported CI
  // must still be the real interval over everything it ran, not a stale or
  // default one.
  std::vector<CampaignCell> cells = {
      {model::SystemKind::S1, fast_plan(512, 8.0, 0.5, 80)}};
  CampaignConfig cfg;
  cfg.base_seed = 13;
  cfg.adaptive.enabled = true;
  cfg.adaptive.round_trials = 4;
  cfg.adaptive.target_rel_ci = 1e-9;
  cfg.adaptive.abs_ci_floor = 1e-9;
  cfg.adaptive.max_trials_per_cell = 12;
  const CampaignResult r = run_campaign(cells, cfg);
  const CellStats& c = r.cells[0];
  EXPECT_EQ(c.trials, cfg.adaptive.max_trials_per_cell);
  EXPECT_EQ(c.rounds, 3u);
  EXPECT_GT(c.lifetime_ci.hi, c.lifetime_ci.lo);
  // The interval is the one normal_ci computes over the final aggregates.
  const ConfidenceInterval want = normal_ci(c.lifetime, cfg.ci_level);
  EXPECT_EQ(c.lifetime_ci.lo, want.lo);
  EXPECT_EQ(c.lifetime_ci.hi, want.hi);
}

TEST(AdaptiveCampaignTest, SingleTrialCellKeepsDefaultCI) {
  // With a one-trial cap there is no variance to build an interval from:
  // the cell must close at the cap with the default (zero-width, level
  // 0.95) interval rather than a garbage one — and still count its round.
  std::vector<CampaignCell> cells = {
      {model::SystemKind::S1, fast_plan(64, 8.0, 0.5, 20)}};
  CampaignConfig cfg;
  cfg.base_seed = 3;
  cfg.adaptive.enabled = true;
  cfg.adaptive.round_trials = 1;
  cfg.adaptive.max_trials_per_cell = 1;
  const CampaignResult r = run_campaign(cells, cfg);
  EXPECT_EQ(r.cells[0].trials, 1u);
  EXPECT_EQ(r.cells[0].rounds, 1u);
  EXPECT_EQ(r.cells[0].lifetime_ci.lo, 0.0);
  EXPECT_EQ(r.cells[0].lifetime_ci.hi, 0.0);
  EXPECT_EQ(r.cells[0].lifetime_ci.level, 0.95);
}

TEST(CampaignTest, NestedCampaignInsideForeignPoolBitIdentical) {
  // A campaign launched from inside ANOTHER pool's parallel_chunks: the
  // foreign pool's workers report their own slots, which can be >= the
  // shared pool's slot_count, so the arena lookup's bounds check must send
  // them down the fresh-stack path instead of out of bounds — with
  // outcomes bit-identical to a top-level run. This is the nested shape a
  // sweep-of-campaigns driver produces.
  std::vector<CampaignCell> cells = {
      {model::SystemKind::S1, fast_plan(64, 8.0, 0.5, 30)},
      {model::SystemKind::S2, fast_plan(128, 8.0, 0.25, 30)}};
  CampaignConfig cfg;
  cfg.trials_per_cell = 4;
  cfg.base_seed = 77;
  cfg.threads = 2;
  const CampaignResult want = run_campaign(cells, cfg);

  // Strictly more slots than the shared pool: at least one worker's slot
  // is out of range for the campaign's arena vector.
  exec::ThreadPool foreign(exec::ThreadPool::shared().slot_count() + 2);
  constexpr std::uint64_t kRuns = 4;
  std::vector<CampaignResult> results(kRuns);
  foreign.parallel_chunks(
      kRuns, 1, 0, [&](std::uint64_t, std::uint64_t begin, std::uint64_t end) {
        for (std::uint64_t i = begin; i < end; ++i) {
          results[i] = run_campaign(cells, cfg);
        }
      });
  for (std::uint64_t i = 0; i < kRuns; ++i) {
    ASSERT_EQ(results[i].cells.size(), want.cells.size());
    EXPECT_EQ(results[i].total_trials, want.total_trials);
    EXPECT_EQ(results[i].total_events, want.total_events);
    for (std::size_t c = 0; c < want.cells.size(); ++c) {
      EXPECT_EQ(results[i].cells[c].compromised, want.cells[c].compromised);
      EXPECT_EQ(results[i].cells[c].events_executed,
                want.cells[c].events_executed);
      EXPECT_EQ(results[i].cells[c].lifetime.mean(),
                want.cells[c].lifetime.mean());
      EXPECT_EQ(results[i].cells[c].lifetime.variance(),
                want.cells[c].lifetime.variance());
    }
  }
}

TEST(CampaignTest, CrossIsSystemsMajor) {
  std::vector<net::ScenarioPlan> plans(2);
  plans[0].name = "a";
  plans[1].name = "b";
  auto cells = cross({model::SystemKind::S0, model::SystemKind::S2}, plans);
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].system, model::SystemKind::S0);
  EXPECT_EQ(cells[0].plan.name, "a");
  EXPECT_EQ(cells[1].plan.name, "b");
  EXPECT_EQ(cells[2].system, model::SystemKind::S2);
}

// The acceptance cross-check: campaign-measured S2 mean lifetimes agree
// with the absorbing-Markov prediction, for three distinct ScenarioPlans.
// The live stack implements mechanisms (sequential probes, connection
// side channels, launch pads), not the abstract per-step model, so exact
// agreement is not expected; tolerance is 25% of the prediction plus the
// campaign's own 99% confidence half-width (cf. bench_crossvalidate's 35%
// band for live-vs-model S1).
TEST(CampaignTest, S2LifetimeMatchesMarkovAcrossPlans) {
  struct Case {
    std::uint64_t chi;
    double omega;
    double kappa;
    std::uint64_t horizon;
  };
  const Case cases[] = {
      {128, 8.0, 0.5, 600}, {256, 8.0, 0.5, 900}, {128, 8.0, 0.25, 900}};

  std::vector<CampaignCell> cells;
  for (const Case& c : cases) {
    cells.push_back(
        {model::SystemKind::S2, fast_plan(c.chi, c.omega, c.kappa, c.horizon)});
  }
  CampaignConfig cfg;
  cfg.trials_per_cell = 120;
  cfg.base_seed = 2026;
  cfg.ci_level = 0.99;
  CampaignResult result = run_campaign(cells, cfg);

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellStats& cell = result.cells[i];
    model::AttackParams params;
    params.chi = cases[i].chi;
    params.alpha = cells[i].plan.implied_alpha();
    params.kappa = cases[i].kappa;
    const double predicted =
        analysis::expected_lifetime_markov(model::SystemShape::s2(3), params);
    const double live = cell.mean_lifetime();
    const double half_width = (cell.lifetime_ci.hi - cell.lifetime_ci.lo) / 2;
    EXPECT_EQ(cell.censored, 0u)
        << "horizon too short for chi=" << cases[i].chi;
    EXPECT_NEAR(live, predicted, 0.25 * predicted + half_width)
        << "plan " << i << ": live=" << live << " markov=" << predicted;
  }
}

}  // namespace
}  // namespace fortress::scenario
