// Tests for the scenario campaign runner: determinism, thread-count
// invariance of aggregated statistics, fault schedule behaviour, and the
// live-vs-analytic cross-validation the campaign machinery exists for.
#include "scenario/campaign.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/markov.hpp"
#include "core/live_system.hpp"
#include "replication/service.hpp"

namespace fortress::scenario {
namespace {

net::ScenarioPlan fast_plan(std::uint64_t chi, double omega, double kappa,
                            std::uint64_t horizon) {
  net::ScenarioPlan plan;
  plan.keyspace = chi;
  plan.attack.probes_per_step = omega;
  plan.attack.indirect_fraction = kappa;
  plan.horizon_steps = horizon;
  plan.proxy_blacklist = false;
  plan.latency = net::LatencySpec::uniform(0.01, 0.02);
  return plan;
}

TEST(RunTrialTest, DeterministicInSeed) {
  net::ScenarioPlan plan = fast_plan(64, 8.0, 0.5, 60);
  TrialOutcome a = run_trial(model::SystemKind::S2, plan, 99);
  TrialOutcome b = run_trial(model::SystemKind::S2, plan, 99);
  EXPECT_EQ(a.compromised, b.compromised);
  EXPECT_EQ(a.lifetime_steps, b.lifetime_steps);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.attacker.direct_probes, b.attacker.direct_probes);
  EXPECT_EQ(a.attacker.indirect_probes, b.attacker.indirect_probes);
  EXPECT_EQ(a.attacker.compromises, b.attacker.compromises);
}

TEST(RunTrialTest, SurvivesWithoutAttack) {
  net::ScenarioPlan plan = fast_plan(64, 8.0, 0.5, 10);
  plan.attack.enabled = false;
  TrialOutcome out = run_trial(model::SystemKind::S1, plan, 3);
  EXPECT_FALSE(out.compromised);
  EXPECT_EQ(out.lifetime_steps, plan.horizon_steps);
  EXPECT_EQ(out.attacker.direct_probes, 0u);
  EXPECT_GT(out.events_executed, 0u);
}

TEST(RunTrialTest, FaultsOnMissingTiersAreIgnored) {
  // S1 has no proxy tier, and index 99 is out of range everywhere; the plan
  // must still run cleanly on every class.
  net::ScenarioPlan plan = fast_plan(64, 8.0, 0.5, 10);
  plan.faults.push_back({net::FaultEvent::Target::Proxy, 0, 150.0});
  plan.faults.push_back({net::FaultEvent::Target::Server, 99, 250.0});
  plan.faults.push_back({net::FaultEvent::Target::Server, 0, 350.0});
  for (model::SystemKind kind :
       {model::SystemKind::S0, model::SystemKind::S1, model::SystemKind::S2}) {
    TrialOutcome out = run_trial(kind, plan, 5);
    EXPECT_LE(out.lifetime_steps, plan.horizon_steps);
  }
}

TEST(RunTrialTest, ServerFaultRebootKeepsKey) {
  // A FaultEvent models crash + restart with the current key (proactive
  // recovery, not re-randomization).
  sim::Simulator sim;
  net::ScenarioPlan plan = fast_plan(64, 8.0, 0.5, 10);
  plan.attack.enabled = false;
  auto live = core::make_live_system(sim, model::SystemKind::S1, plan, 11);
  live->start();
  sim.run_until(50.0);
  osl::Machine* target = live->fault_target(net::FaultEvent::Target::Server, 0);
  ASSERT_NE(target, nullptr);
  const osl::RandKey key_before = target->key();
  target->recover();
  EXPECT_EQ(target->key(), key_before);
  EXPECT_EQ(live->fault_target(net::FaultEvent::Target::Server, 99), nullptr);
  EXPECT_EQ(live->fault_target(net::FaultEvent::Target::Proxy, 0), nullptr);
}

TEST(RunTrialTest, IndirectOnlyAttackerSendsNoDirectProbes) {
  // direct_enabled = false models the detection-study adversary: all of its
  // traffic must traverse the proxy tier.
  net::ScenarioPlan plan = fast_plan(64, 8.0, 1.0, 20);
  plan.attack.direct_enabled = false;
  TrialOutcome out = run_trial(model::SystemKind::S2, plan, 17);
  EXPECT_EQ(out.attacker.direct_probes, 0u);
  EXPECT_GT(out.attacker.indirect_probes, 0u);
}

TEST(RunTrialTest, DetectionBlacklistsIndirectOnlyAttacker) {
  // With proxy detection on, the indirect-only attacker's identities must
  // end up blacklisted — the observable evidence detection fired.
  net::ScenarioPlan plan = fast_plan(64, 8.0, 1.0, 20);
  plan.attack.direct_enabled = false;
  plan.proxy_blacklist = true;
  plan.detection_threshold = 5;
  TrialOutcome out = run_trial(model::SystemKind::S2, plan, 17);
  EXPECT_GT(out.blacklisted_sources, 0u);
  // S1 has no detection tier: the hook reports zero.
  plan.name = "s1-no-detection";
  TrialOutcome s1 = run_trial(model::SystemKind::S1, plan, 17);
  EXPECT_EQ(s1.blacklisted_sources, 0u);
}

TEST(CampaignTest, TopologyHooksPerClass) {
  sim::Simulator sim;
  net::ScenarioPlan plan = fast_plan(64, 8.0, 0.5, 10);
  plan.n_servers = 3;
  plan.n_proxies = 4;

  auto s1 = core::make_live_system(sim, model::SystemKind::S1, plan, 1);
  // One shared key across the S1 tier => exactly one direct channel
  // (Definition 2); the primary stands in for the tier.
  EXPECT_EQ(s1->direct_attack_surface().size(), 1u);
  EXPECT_TRUE(s1->launchpad_machines().empty());
  EXPECT_TRUE(s1->hidden_server_addresses().empty());

  sim::Simulator sim2;
  auto s2 = core::make_live_system(sim2, model::SystemKind::S2, plan, 1);
  EXPECT_EQ(s2->direct_attack_surface().size(), 4u);  // proxies, not servers
  EXPECT_EQ(s2->launchpad_machines().size(), 4u);
  EXPECT_EQ(s2->hidden_server_addresses().size(), 3u);
  EXPECT_NE(s2->fault_target(net::FaultEvent::Target::Proxy, 3), nullptr);

  sim::Simulator sim3;
  auto s0 = core::make_live_system(sim3, model::SystemKind::S0, plan, 1);
  EXPECT_EQ(s0->direct_attack_surface().size(), 4u);  // 3f+1 with f=1
}

TEST(CampaignTest, AggregatesBitIdenticalForAnyThreadCount) {
  std::vector<net::ScenarioPlan> plans = {fast_plan(64, 8.0, 0.5, 40),
                                          fast_plan(128, 8.0, 0.25, 40)};
  plans[1].name = "quarter-kappa";
  std::vector<CampaignCell> cells =
      cross({model::SystemKind::S1, model::SystemKind::S2}, plans);

  CampaignConfig cfg;
  cfg.trials_per_cell = 5;
  cfg.base_seed = 31337;

  cfg.threads = 1;
  CampaignResult serial = run_campaign(cells, cfg);
  for (unsigned threads : {3u, 8u}) {
    cfg.threads = threads;
    CampaignResult parallel = run_campaign(cells, cfg);
    ASSERT_EQ(parallel.cells.size(), serial.cells.size());
    EXPECT_EQ(parallel.total_trials, serial.total_trials);
    EXPECT_EQ(parallel.total_events, serial.total_events);
    for (std::size_t i = 0; i < serial.cells.size(); ++i) {
      const CellStats& a = serial.cells[i];
      const CellStats& b = parallel.cells[i];
      EXPECT_EQ(a.plan_name, b.plan_name);
      EXPECT_EQ(a.compromised, b.compromised);
      EXPECT_EQ(a.censored, b.censored);
      EXPECT_EQ(a.events_executed, b.events_executed);
      EXPECT_EQ(a.attacker.direct_probes, b.attacker.direct_probes);
      EXPECT_EQ(a.attacker.crashes_caused, b.attacker.crashes_caused);
      EXPECT_EQ(a.attacker.keys_learned, b.attacker.keys_learned);
      // Bit-identical, not just close:
      EXPECT_EQ(a.lifetime.mean(), b.lifetime.mean());
      EXPECT_EQ(a.lifetime.variance(), b.lifetime.variance());
      EXPECT_EQ(a.lifetime_ci.lo, b.lifetime_ci.lo);
      EXPECT_EQ(a.lifetime_ci.hi, b.lifetime_ci.hi);
    }
  }
}

TEST(CampaignTest, CrossIsSystemsMajor) {
  std::vector<net::ScenarioPlan> plans(2);
  plans[0].name = "a";
  plans[1].name = "b";
  auto cells = cross({model::SystemKind::S0, model::SystemKind::S2}, plans);
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].system, model::SystemKind::S0);
  EXPECT_EQ(cells[0].plan.name, "a");
  EXPECT_EQ(cells[1].plan.name, "b");
  EXPECT_EQ(cells[2].system, model::SystemKind::S2);
}

// The acceptance cross-check: campaign-measured S2 mean lifetimes agree
// with the absorbing-Markov prediction, for three distinct ScenarioPlans.
// The live stack implements mechanisms (sequential probes, connection
// side channels, launch pads), not the abstract per-step model, so exact
// agreement is not expected; tolerance is 25% of the prediction plus the
// campaign's own 99% confidence half-width (cf. bench_crossvalidate's 35%
// band for live-vs-model S1).
TEST(CampaignTest, S2LifetimeMatchesMarkovAcrossPlans) {
  struct Case {
    std::uint64_t chi;
    double omega;
    double kappa;
    std::uint64_t horizon;
  };
  const Case cases[] = {
      {128, 8.0, 0.5, 600}, {256, 8.0, 0.5, 900}, {128, 8.0, 0.25, 900}};

  std::vector<CampaignCell> cells;
  for (const Case& c : cases) {
    cells.push_back(
        {model::SystemKind::S2, fast_plan(c.chi, c.omega, c.kappa, c.horizon)});
  }
  CampaignConfig cfg;
  cfg.trials_per_cell = 120;
  cfg.base_seed = 2026;
  cfg.ci_level = 0.99;
  CampaignResult result = run_campaign(cells, cfg);

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellStats& cell = result.cells[i];
    model::AttackParams params;
    params.chi = cases[i].chi;
    params.alpha = cells[i].plan.implied_alpha();
    params.kappa = cases[i].kappa;
    const double predicted =
        analysis::expected_lifetime_markov(model::SystemShape::s2(3), params);
    const double live = cell.mean_lifetime();
    const double half_width = (cell.lifetime_ci.hi - cell.lifetime_ci.lo) / 2;
    EXPECT_EQ(cell.censored, 0u)
        << "horizon too short for chi=" << cases[i].chi;
    EXPECT_NEAR(live, predicted, 0.25 * predicted + half_width)
        << "plan " << i << ": live=" << live << " markov=" << predicted;
  }
}

}  // namespace
}  // namespace fortress::scenario
