#include "model/step_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace fortress::model {
namespace {

AttackParams params(double alpha, double kappa = 0.5,
                    std::uint64_t chi = 1ull << 16) {
  AttackParams p;
  p.alpha = alpha;
  p.kappa = kappa;
  p.chi = chi;
  return p;
}

TEST(BinomialTailTest, KnownValues) {
  EXPECT_DOUBLE_EQ(binomial_tail(4, 0.5, 0), 1.0);
  EXPECT_NEAR(binomial_tail(4, 0.5, 4), 0.0625, 1e-12);
  EXPECT_NEAR(binomial_tail(4, 0.5, 2),
              1.0 - 0.0625 - 4 * 0.0625, 1e-12);  // 1 - P(0) - P(1)
  EXPECT_DOUBLE_EQ(binomial_tail(4, 0.5, 5), 0.0);
}

TEST(BinomialTailTest, SmallPAsymptotics) {
  // P(Bin(4, a) >= 2) ~ 6 a^2 for small a.
  double a = 1e-4;
  EXPECT_NEAR(binomial_tail(4, a, 2) / (6 * a * a), 1.0, 1e-3);
}

TEST(PerStepTest, S1IsAlpha) {
  EXPECT_DOUBLE_EQ(
      per_step_compromise_probability(SystemShape::s1(), params(0.01)), 0.01);
}

TEST(PerStepTest, S0NeedsTwoHits) {
  double a = 0.01;
  double p = per_step_compromise_probability(SystemShape::s0(), params(a));
  EXPECT_NEAR(p, binomial_tail(4, a, 2), 1e-15);
  EXPECT_LT(p, a);  // strictly harder than compromising S1
}

TEST(PerStepTest, S2KappaZeroLeavesOnlyProxyRoutes) {
  double a = 0.01;
  double p =
      per_step_compromise_probability(SystemShape::s2(), params(a, 0.0));
  // With kappa = 0: routes are all-proxies (a^3) and via-proxy
  // (P(1<=j<np) * a).
  double p_all = a * a * a;
  double p_some = 3 * a * a * (1 - a) + 3 * a * (1 - a) * (1 - a);
  double expected = p_all + p_some * a;
  EXPECT_NEAR(p, expected, 1e-15);
}

TEST(PerStepTest, S2KappaOneApproachesS1PlusExtra) {
  // With kappa = 1 the indirect route alone equals S1's channel, so S2 must
  // be at least as compromisable as S1 per-step.
  double a = 0.005;
  double p2 =
      per_step_compromise_probability(SystemShape::s2(), params(a, 1.0));
  EXPECT_GE(p2, a);
}

TEST(PerStepTest, S2MonotoneInKappa) {
  double a = 0.003;
  double prev = -1.0;
  for (double k = 0.0; k <= 1.0; k += 0.1) {
    double p = per_step_compromise_probability(SystemShape::s2(), params(a, k));
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(GeometricElTest, MatchesFormula) {
  EXPECT_DOUBLE_EQ(geometric_expected_lifetime(0.5), 1.0);
  EXPECT_DOUBLE_EQ(geometric_expected_lifetime(1.0), 0.0);
  EXPECT_NEAR(geometric_expected_lifetime(0.01), 99.0, 1e-12);
}

TEST(GeometricElTest, InvalidPViolatesContract) {
  EXPECT_THROW(geometric_expected_lifetime(0.0), ContractViolation);
  EXPECT_THROW(geometric_expected_lifetime(1.5), ContractViolation);
}

TEST(ExpectedLifetimePoTest, S1POIsOneOverAlphaMinusOne) {
  EXPECT_NEAR(expected_lifetime_po(SystemShape::s1(), params(0.001)),
              999.0, 1e-9);
}

TEST(ExpectedLifetimePoTest, OrderingS0BestThenS2ThenS1) {
  // Trend 4 + Trend 3 at the per-step level, kappa = 0.5 <= 0.9.
  auto p = params(0.001, 0.5);
  double el_s0 = expected_lifetime_po(SystemShape::s0(), p);
  double el_s2 = expected_lifetime_po(SystemShape::s2(), p);
  double el_s1 = expected_lifetime_po(SystemShape::s1(), p);
  EXPECT_GT(el_s0, el_s2);
  EXPECT_GT(el_s2, el_s1);
}

TEST(ExpectedLifetimePoTest, S2AtKappaZeroStillBelowS0) {
  // Trend 4: S0PO outlives S2PO "except when kappa = 0". At kappa = 0 the
  // via-proxy route (~3a^2 per step vs S0's ~6a^2) makes S2 the winner.
  auto p = params(0.001, 0.0);
  EXPECT_GT(expected_lifetime_po(SystemShape::s2(), p),
            expected_lifetime_po(SystemShape::s0(), p));
}

TEST(S1SoTest, ExactSmallCase) {
  // chi = 8, omega = 2 (alpha = 0.25): steps of 2 candidates each.
  // P(step 1) = 2/8 -> 0 whole steps, step 2 -> 1, step 3 -> 2, step 4 -> 3.
  // EL = (2*0 + 2*1 + 2*2 + 2*3)/8 = 12/8 = 1.5.
  auto p = params(0.25, 0.5, 8);
  EXPECT_EQ(p.omega(), 2u);
  EXPECT_NEAR(expected_lifetime_s1_so(p), 1.5, 1e-12);
}

TEST(S1SoTest, ApproximatelyHalfKeyspaceOverOmega) {
  auto p = params(0.01, 0.5, 1ull << 16);
  double el = expected_lifetime_s1_so(p);
  // E[ceil(U/w)] - 1 ~ chi/(2w) = 1/(2 alpha) for omega << chi.
  EXPECT_NEAR(el, 0.5 / 0.01, 2.0);
}

TEST(S0SoTest, FallsFasterThanS1So) {
  // Trend 1: S1SO outlives S0SO.
  for (double a : {1e-4, 1e-3, 1e-2}) {
    auto p = params(a);
    EXPECT_GT(expected_lifetime_s1_so(p),
              expected_lifetime_s0_so(SystemShape::s0(), p))
        << "alpha=" << a;
  }
}

TEST(S0SoTest, MatchesOrderStatisticApproximation) {
  // E[position of 2nd of 4 keys] = 2(chi+1)/5; EL ~ that / omega - 1.
  auto p = params(0.01);
  double el = expected_lifetime_s0_so(SystemShape::s0(), p);
  double approx = 2.0 * (static_cast<double>(p.chi) + 1) / 5.0 /
                      static_cast<double>(p.omega()) - 0.5;
  EXPECT_NEAR(el / approx, 1.0, 0.05);
}

TEST(S0SoTest, RequiresS0Shape) {
  EXPECT_THROW(expected_lifetime_s0_so(SystemShape::s1(), params(0.01)),
               ContractViolation);
}

TEST(TrendTest, PoOutlivesSoForBothS0AndS1) {
  // Trend 2 restricted to the analytically solvable systems.
  for (double a : {1e-4, 1e-3, 1e-2}) {
    auto p = params(a);
    EXPECT_GT(expected_lifetime_po(SystemShape::s1(), p),
              expected_lifetime_s1_so(p));
    EXPECT_GT(expected_lifetime_po(SystemShape::s0(), p),
              expected_lifetime_s0_so(SystemShape::s0(), p));
  }
}

TEST(CrossoverTest, KappaCrossoverNearOneMinusThreeAlpha) {
  // Per the step-granular model, S2PO's per-step probability
  // ~ kappa*a + 3a^2 + O(a^3); equality with S1PO's a gives
  // kappa* ~ 1 - 3a.
  auto p = params(0.01);
  double k = s2_vs_s1_kappa_crossover(p);
  EXPECT_NEAR(k, 1.0 - 3 * 0.01, 5e-3);
}

TEST(CrossoverTest, BelowCrossoverS2Wins) {
  auto p = params(0.005);
  double kstar = s2_vs_s1_kappa_crossover(p);
  AttackParams below = p;
  below.kappa = kstar * 0.9;
  EXPECT_GT(expected_lifetime_po(SystemShape::s2(), below),
            expected_lifetime_po(SystemShape::s1(), below));
  AttackParams above = p;
  above.kappa = std::min(1.0, kstar * 1.1);
  EXPECT_LT(expected_lifetime_po(SystemShape::s2(), above),
            expected_lifetime_po(SystemShape::s1(), above));
}

// Parameterized sweep: the paper's headline ordering chain at kappa = 0.5
// holds across the full alpha range of §5.
class OrderingChainSweep : public ::testing::TestWithParam<double> {};

TEST_P(OrderingChainSweep, S0PoBeatsS2PoBeatsS1PoBeatsS1SoBeatsS0So) {
  auto p = params(GetParam(), 0.5);
  double s0po = expected_lifetime_po(SystemShape::s0(), p);
  double s2po = expected_lifetime_po(SystemShape::s2(), p);
  double s1po = expected_lifetime_po(SystemShape::s1(), p);
  double s1so = expected_lifetime_s1_so(p);
  double s0so = expected_lifetime_s0_so(SystemShape::s0(), p);
  EXPECT_GT(s0po, s2po);
  EXPECT_GT(s2po, s1po);
  EXPECT_GT(s1po, s1so);
  EXPECT_GT(s1so, s0so);
}

INSTANTIATE_TEST_SUITE_P(AlphaRange, OrderingChainSweep,
                         ::testing::Values(1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
                                           1e-2));

}  // namespace
}  // namespace fortress::model
