#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/check.hpp"

namespace fortress {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(1234);
  SplitMix64 b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256Test, Deterministic) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256Test, JumpChangesStream) {
  Xoshiro256 a(42), b(42);
  b.jump();
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (a() != b()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(RngTest, BelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(RngTest, BelowZeroViolatesContract) {
  Rng rng(7);
  EXPECT_THROW(rng.below(0), ContractViolation);
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.below(kBuckets)];
  }
  // Expected 10000 per bucket; allow 5% deviation (far beyond 5-sigma).
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.05);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(RngTest, Uniform01InHalfOpenInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(RngTest, GeometricMeanMatchesTheory) {
  Rng rng(17);
  const double p = 0.01;
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(rng.geometric(p));
  }
  double mean = sum / kSamples;
  // E[failures before success] = (1-p)/p = 99.
  EXPECT_NEAR(mean, (1.0 - p) / p, 2.0);
}

TEST(RngTest, GeometricTinyPDoesNotLoopForever) {
  Rng rng(19);
  // With p = 1e-12 inversion sampling must return instantly.
  std::uint64_t g = rng.geometric(1e-12);
  EXPECT_GT(g, 0u);
}

TEST(RngTest, GeometricPOneIsZero) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(RngTest, GeometricInvalidPThrows) {
  Rng rng(23);
  EXPECT_THROW(rng.geometric(0.0), ContractViolation);
  EXPECT_THROW(rng.geometric(1.5), ContractViolation);
}

TEST(RngTest, ExponentialMeanMatchesTheory) {
  Rng rng(29);
  const double lambda = 0.5;
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(lambda);
  EXPECT_NEAR(sum / kSamples, 1.0 / lambda, 0.05);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(31);
  auto sample = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (auto v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(37);
  auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SampleWithoutReplacementKZero) {
  Rng rng(37);
  EXPECT_TRUE(rng.sample_without_replacement(10, 0).empty());
}

TEST(RngTest, SampleWithoutReplacementUniformMarginal) {
  // Each element of [0, 10) should appear in a 3-sample with p = 0.3.
  Rng rng(41);
  std::vector<int> counts(10, 0);
  constexpr int kTrials = 50000;
  for (int t = 0; t < kTrials; ++t) {
    for (auto v : rng.sample_without_replacement(10, 3)) ++counts[v];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kTrials, 0.3, 0.02);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(43);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SubstreamsAreDecorrelated) {
  Rng a = Rng::substream(100, 0);
  Rng b = Rng::substream(100, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.bits() == b.bits()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, SubstreamIsDeterministic) {
  Rng a = Rng::substream(100, 5);
  Rng b = Rng::substream(100, 5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.bits(), b.bits());
}

TEST(RngTest, ResetSubstreamMatchesSubstream) {
  // In-place re-pointing must be bit-identical to constructing the
  // substream — the Monte-Carlo engine relies on this for determinism.
  Rng reused(999);
  reused.bits();  // disturb the state; reset must not care
  for (std::uint64_t index : {0ull, 1ull, 7ull, 1ull << 40}) {
    Rng fresh = Rng::substream(2026, index);
    reused.reset_substream(2026, index);
    for (int i = 0; i < 50; ++i) EXPECT_EQ(fresh.bits(), reused.bits());
  }
}

TEST(RngTest, SampleWithoutReplacementIntoMatchesVectorVariant) {
  // Same draw sequence -> same sample, so the allocation-free kernel path
  // is stream-compatible with the reference implementation.
  for (std::uint64_t k : {0ull, 1ull, 5ull, 16ull}) {
    Rng a(123);
    Rng b(123);
    auto expect = a.sample_without_replacement(40, k);
    std::array<std::uint64_t, 16> got{};
    b.sample_without_replacement_into(40, k, got.data());
    for (std::uint64_t i = 0; i < k; ++i) EXPECT_EQ(got[i], expect[i]);
    // Both generators must end in the same state.
    EXPECT_EQ(a.bits(), b.bits());
  }
}

}  // namespace
}  // namespace fortress
