// Tests for adaptive stopping: the multi-metric rule engine, the
// rare-event/zero-mean budget fix, rule validation, and work-stealing
// rounds (deterministic capacity re-issue from closed to open cells).
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "scenario/campaign.hpp"

namespace fortress::scenario {
namespace {

net::ScenarioPlan fast_plan(std::uint64_t chi, double omega, double kappa,
                            std::uint64_t horizon) {
  net::ScenarioPlan plan;
  plan.keyspace = chi;
  plan.attack.probes_per_step = omega;
  plan.attack.indirect_fraction = kappa;
  plan.horizon_steps = horizon;
  plan.proxy_blacklist = false;
  plan.latency = net::LatencySpec::uniform(0.01, 0.02);
  return plan;
}

// --- the zero/near-zero-mean stall fix ------------------------------------

TEST(StoppingBudgetTest, NearZeroMeanCellClosesOnAbsoluteFloor) {
  // THE budget bug: chi = 24 under 16 probes/step compromises almost every
  // trial at step 0 or 1, so the mean lifetime sits near zero with nonzero
  // variance. The old relative-only criterion (half <= target_rel * mean)
  // was unsatisfiable there — this exact cell used to burn the entire
  // 512-trial cap over 64 rounds. With the default absolute floor of half
  // a step (lifetimes are whole steps; finer resolution is meaningless)
  // it must close after its very first round.
  std::vector<CampaignCell> cells = {
      {model::SystemKind::S1, fast_plan(24, 16.0, 0.0, 40)}};
  CampaignConfig cfg;
  cfg.base_seed = 7;
  cfg.adaptive.enabled = true;
  cfg.adaptive.round_trials = 32;
  cfg.adaptive.target_rel_ci = 0.10;
  cfg.adaptive.max_trials_per_cell = 512;
  const CampaignResult r = run_campaign(cells, cfg);
  EXPECT_EQ(r.cells[0].trials, 32u);
  EXPECT_EQ(r.cells[0].rounds, 1u);
  // Sanity: this really is the pathological shape — near-zero mean, and
  // (unlike the exact-zero-variance case) a nonzero-width interval.
  EXPECT_LT(r.cells[0].mean_lifetime(), 2.0);
  EXPECT_GT(r.cells[0].lifetime_ci.hi, r.cells[0].lifetime_ci.lo);
}

TEST(StoppingBudgetTest, DisablingTheFloorReproducesTheStall) {
  // The same cell with the floor explicitly zeroed runs to the cap — this
  // is the legacy semantics (and the bug), kept reachable on purpose so
  // the default's effect is observable.
  std::vector<CampaignCell> cells = {
      {model::SystemKind::S1, fast_plan(24, 16.0, 0.0, 40)}};
  CampaignConfig cfg;
  cfg.base_seed = 7;
  cfg.adaptive.enabled = true;
  cfg.adaptive.round_trials = 32;
  cfg.adaptive.target_rel_ci = 0.10;
  cfg.adaptive.abs_ci_floor = 0.0;
  cfg.adaptive.max_trials_per_cell = 128;
  const CampaignResult r = run_campaign(cells, cfg);
  EXPECT_EQ(r.cells[0].trials, cfg.adaptive.max_trials_per_cell);
}

// --- stopping_rule_satisfied unit behaviour -------------------------------

TEST(StoppingRuleTest, MeanLifetimeNeedsTwoTrials) {
  CellStats stats;
  StoppingRule rule;  // defaults: MeanLifetime, rel 0.10, floor 0
  rule.abs_floor = 100.0;
  EXPECT_FALSE(stopping_rule_satisfied(stats, rule, 0.95));
  stats.lifetime.add(5.0);
  stats.trials = 1;
  EXPECT_FALSE(stopping_rule_satisfied(stats, rule, 0.95));
  stats.lifetime.add(5.0);
  stats.trials = 2;
  EXPECT_TRUE(stopping_rule_satisfied(stats, rule, 0.95));
}

TEST(StoppingRuleTest, CompromiseProbabilityClosesAtZeroSuccesses) {
  // The Wilson interval's half-width at p-hat = 0 shrinks like z^2/2n, so
  // a zero-compromise cell closes once n is large enough for the absolute
  // floor — with floor 0.05 that is n ~ 40, not never.
  StoppingRule rule;
  rule.metric = StoppingRule::Metric::CompromiseProbability;
  rule.target_rel = 0.25;
  rule.abs_floor = 0.05;
  CellStats stats;
  stats.trials = 20;
  stats.compromised = 0;
  EXPECT_FALSE(stopping_rule_satisfied(stats, rule, 0.95));
  stats.trials = 200;
  EXPECT_TRUE(stopping_rule_satisfied(stats, rule, 0.95));
  // Symmetric at p-hat = 1 (all compromised): same closing behaviour.
  stats.compromised = 200;
  EXPECT_TRUE(stopping_rule_satisfied(stats, rule, 0.95));
}

TEST(StoppingRuleTest, LatencyQuantileVacuousWithoutSamples) {
  // A plan with no traffic plane yields zero latency samples forever; the
  // rule must report satisfied or such plans would stall at the cap.
  StoppingRule rule;
  rule.metric = StoppingRule::Metric::LatencyQuantile;
  rule.abs_floor = 0.1;
  CellStats stats;
  stats.trials = 50;
  EXPECT_TRUE(stopping_rule_satisfied(stats, rule, 0.95));
  // With samples, the rule engages: single-bin mass has a zero-width rank
  // band, so it closes; a median spread across decades with few samples
  // has a rank band spanning bins and cannot.
  stats.traffic.latency.add_bin(10, 100);
  EXPECT_TRUE(stopping_rule_satisfied(stats, rule, 0.95));
  StoppingRule median = rule;
  median.quantile = 0.5;
  CellStats spread;
  spread.trials = 4;
  spread.traffic.latency.add_bin(5, 2);
  spread.traffic.latency.add_bin(40, 1);
  spread.traffic.latency.add_bin(60, 1);
  EXPECT_FALSE(stopping_rule_satisfied(spread, median, 0.95));
}

TEST(StoppingRuleTest, InvalidRulesAreRejectedAtCampaignEntry) {
  std::vector<CampaignCell> cells = {
      {model::SystemKind::S1, fast_plan(64, 8.0, 0.5, 10)}};
  CampaignConfig cfg;
  cfg.adaptive.enabled = true;
  cfg.adaptive.max_trials_per_cell = 4;

  // CompromiseProbability without an absolute floor is exactly the
  // rare-event stall (no relative leg at p = 0): rejected, not run.
  StoppingRule bad;
  bad.metric = StoppingRule::Metric::CompromiseProbability;
  bad.abs_floor = 0.0;
  cfg.adaptive.rules = {bad};
  EXPECT_THROW(run_campaign(cells, cfg), ContractViolation);

  // A rule with no target at all can never be satisfied.
  StoppingRule never;
  never.target_rel = 0.0;
  never.abs_floor = 0.0;
  cfg.adaptive.rules = {never};
  EXPECT_THROW(run_campaign(cells, cfg), ContractViolation);

  // Quantiles live strictly inside (0, 1).
  StoppingRule q;
  q.metric = StoppingRule::Metric::LatencyQuantile;
  q.quantile = 1.0;
  q.abs_floor = 0.1;
  cfg.adaptive.rules = {q};
  EXPECT_THROW(run_campaign(cells, cfg), ContractViolation);
}

TEST(MultiMetricTest, EveryRuleMustHoldBeforeTheCellCloses) {
  // A calm (attack-off) cell satisfies the mean-lifetime rule after one
  // round (zero variance). Adding a compromise-probability rule keeps it
  // open until the Wilson interval narrows under the floor — strictly more
  // trials than the mean-only run, and at close both rules hold.
  net::ScenarioPlan calm = fast_plan(64, 8.0, 0.5, 20);
  calm.attack.enabled = false;
  std::vector<CampaignCell> cells = {{model::SystemKind::S1, calm}};

  CampaignConfig cfg;
  cfg.base_seed = 11;
  cfg.adaptive.enabled = true;
  cfg.adaptive.round_trials = 8;
  cfg.adaptive.max_trials_per_cell = 128;
  StoppingRule mean;
  mean.target_rel = 0.10;
  mean.abs_floor = 0.5;
  cfg.adaptive.rules = {mean};
  const CampaignResult mean_only = run_campaign(cells, cfg);
  EXPECT_EQ(mean_only.cells[0].trials, 8u);

  StoppingRule comp;
  comp.metric = StoppingRule::Metric::CompromiseProbability;
  comp.target_rel = 0.25;
  comp.abs_floor = 0.05;
  cfg.adaptive.rules = {mean, comp};
  const CampaignResult both = run_campaign(cells, cfg);
  EXPECT_GT(both.cells[0].trials, mean_only.cells[0].trials);
  EXPECT_LT(both.cells[0].trials, cfg.adaptive.max_trials_per_cell);
  for (const StoppingRule& rule : cfg.adaptive.rules) {
    EXPECT_TRUE(stopping_rule_satisfied(both.cells[0], rule, cfg.ci_level));
  }
}

TEST(MultiMetricTest, EmptyRulesEqualsDefaultMeanRule) {
  // effective_rules() synthesizes the default rule from the legacy knobs;
  // spelling that rule out explicitly must be bit-identical.
  std::vector<CampaignCell> cells = {
      {model::SystemKind::S1, fast_plan(128, 8.0, 0.5, 60)}};
  CampaignConfig cfg;
  cfg.base_seed = 31337;
  cfg.adaptive.enabled = true;
  cfg.adaptive.round_trials = 4;
  cfg.adaptive.target_rel_ci = 0.15;
  cfg.adaptive.max_trials_per_cell = 32;
  const CampaignResult implicit = run_campaign(cells, cfg);

  StoppingRule def;
  def.target_rel = cfg.adaptive.target_rel_ci;
  def.abs_floor = cfg.adaptive.abs_ci_floor;
  cfg.adaptive.rules = {def};
  const CampaignResult explicit_rule = run_campaign(cells, cfg);
  EXPECT_EQ(implicit.cells[0].trials, explicit_rule.cells[0].trials);
  EXPECT_EQ(implicit.cells[0].rounds, explicit_rule.cells[0].rounds);
  EXPECT_EQ(implicit.cells[0].lifetime.mean(),
            explicit_rule.cells[0].lifetime.mean());
  EXPECT_EQ(implicit.cells[0].lifetime.variance(),
            explicit_rule.cells[0].lifetime.variance());
}

// --- work-stealing rounds -------------------------------------------------

CampaignConfig steal_config(bool stealing) {
  CampaignConfig cfg;
  cfg.base_seed = 90210;
  cfg.adaptive.enabled = true;
  cfg.adaptive.round_trials = 4;
  cfg.adaptive.work_stealing = stealing;
  return cfg;
}

TEST(WorkStealingTest, ReissuesClosedCellCapacityAndPreservesAggregates) {
  // One calm cell (closes after round 1) and one noisy cell driven to the
  // cap by an unreachable target. With stealing, the calm cell's share
  // flows to the noisy cell from round 2 on, so the noisy cell reaches the
  // cap in FEWER rounds — while executing the exact same contiguous trial
  // set, so every aggregate is bit-identical to the no-stealing run.
  net::ScenarioPlan calm = fast_plan(64, 8.0, 0.5, 20);
  calm.name = "calm";
  calm.attack.enabled = false;
  net::ScenarioPlan noisy = fast_plan(512, 8.0, 0.5, 80);
  noisy.name = "noisy";
  std::vector<CampaignCell> cells = {{model::SystemKind::S1, calm},
                                     {model::SystemKind::S1, noisy}};

  CampaignConfig base = steal_config(false);
  base.adaptive.target_rel_ci = 1e-9;  // unreachable: noisy runs to cap
  base.adaptive.abs_ci_floor = 0.5;    // ...but calm (zero variance) closes
  base.adaptive.max_trials_per_cell = 24;
  const CampaignResult legacy = run_campaign(cells, base);

  CampaignConfig steal = base;
  steal.adaptive.work_stealing = true;
  const CampaignResult stolen = run_campaign(cells, steal);

  // Calm cell: closed in round 1 under both schedules, identical stats.
  EXPECT_EQ(legacy.cells[0].rounds, 1u);
  EXPECT_EQ(stolen.cells[0].rounds, 1u);
  EXPECT_EQ(legacy.cells[0].trials, stolen.cells[0].trials);
  EXPECT_EQ(legacy.cells[0].lifetime.mean(), stolen.cells[0].lifetime.mean());

  // Noisy cell: same cap, same trials, same aggregates — fewer rounds.
  EXPECT_EQ(legacy.cells[1].trials, base.adaptive.max_trials_per_cell);
  EXPECT_EQ(stolen.cells[1].trials, base.adaptive.max_trials_per_cell);
  EXPECT_LT(stolen.cells[1].rounds, legacy.cells[1].rounds);
  EXPECT_EQ(legacy.cells[1].lifetime.mean(), stolen.cells[1].lifetime.mean());
  EXPECT_EQ(legacy.cells[1].lifetime.variance(),
            stolen.cells[1].lifetime.variance());
  EXPECT_EQ(legacy.cells[1].events_executed, stolen.cells[1].events_executed);
  EXPECT_EQ(legacy.cells[1].attacker.direct_probes,
            stolen.cells[1].attacker.direct_probes);
  EXPECT_EQ(legacy.total_trials, stolen.total_trials);
  EXPECT_EQ(legacy.total_events, stolen.total_events);
}

TEST(WorkStealingTest, EqualsLegacyScheduleWhileEveryCellIsOpen) {
  // While no cell has closed, the even split of the full-grid capacity IS
  // round_trials per cell — so a grid where all cells run to the cap
  // together must be bit-identical under both schedules, rounds included.
  std::vector<net::ScenarioPlan> plans = {fast_plan(256, 8.0, 0.5, 60),
                                          fast_plan(512, 8.0, 0.25, 60)};
  plans[1].name = "slower";
  std::vector<CampaignCell> cells =
      cross({model::SystemKind::S1, model::SystemKind::S2}, plans);

  CampaignConfig base = steal_config(false);
  base.adaptive.target_rel_ci = 1e-9;
  base.adaptive.abs_ci_floor = 1e-9;
  base.adaptive.max_trials_per_cell = 12;
  const CampaignResult legacy = run_campaign(cells, base);
  CampaignConfig steal = base;
  steal.adaptive.work_stealing = true;
  const CampaignResult stolen = run_campaign(cells, steal);

  ASSERT_EQ(legacy.cells.size(), stolen.cells.size());
  EXPECT_EQ(legacy.total_trials, stolen.total_trials);
  EXPECT_EQ(legacy.total_events, stolen.total_events);
  for (std::size_t i = 0; i < legacy.cells.size(); ++i) {
    EXPECT_EQ(legacy.cells[i].trials, stolen.cells[i].trials);
    EXPECT_EQ(legacy.cells[i].rounds, stolen.cells[i].rounds);
    EXPECT_EQ(legacy.cells[i].lifetime.mean(),
              stolen.cells[i].lifetime.mean());
    EXPECT_EQ(legacy.cells[i].lifetime_ci.hi, stolen.cells[i].lifetime_ci.hi);
  }
}

TEST(WorkStealingTest, BitIdenticalForAnyThreadCountAndIsolation) {
  // The planner runs serially between rounds, so the stolen allocation —
  // and with it every aggregate and per-cell round count — must not depend
  // on thread count or on pooled-vs-fresh stacks.
  net::ScenarioPlan calm = fast_plan(64, 8.0, 0.5, 20);
  calm.name = "calm";
  calm.attack.enabled = false;
  net::ScenarioPlan noisy = fast_plan(256, 8.0, 0.5, 60);
  noisy.name = "noisy";
  std::vector<CampaignCell> cells = {{model::SystemKind::S1, calm},
                                     {model::SystemKind::S2, noisy},
                                     {model::SystemKind::S1, noisy}};

  CampaignConfig cfg = steal_config(true);
  cfg.adaptive.target_rel_ci = 0.15;
  cfg.adaptive.max_trials_per_cell = 24;
  cfg.threads = 1;
  const CampaignResult serial = run_campaign(cells, cfg);
  for (unsigned threads : {2u, 8u}) {
    for (bool pooled : {true, false}) {
      cfg.threads = threads;
      cfg.reuse_trial_stacks = pooled;
      const CampaignResult other = run_campaign(cells, cfg);
      ASSERT_EQ(other.cells.size(), serial.cells.size());
      EXPECT_EQ(other.total_trials, serial.total_trials);
      EXPECT_EQ(other.total_events, serial.total_events);
      for (std::size_t i = 0; i < serial.cells.size(); ++i) {
        EXPECT_EQ(other.cells[i].trials, serial.cells[i].trials)
            << "cell " << i << " threads " << threads << " pooled " << pooled;
        EXPECT_EQ(other.cells[i].rounds, serial.cells[i].rounds);
        EXPECT_EQ(other.cells[i].lifetime.mean(),
                  serial.cells[i].lifetime.mean());
        EXPECT_EQ(other.cells[i].lifetime.variance(),
                  serial.cells[i].lifetime.variance());
        EXPECT_EQ(other.cells[i].lifetime_ci.lo,
                  serial.cells[i].lifetime_ci.lo);
      }
    }
  }
  cfg.reuse_trial_stacks = true;
}

}  // namespace
}  // namespace fortress::scenario
