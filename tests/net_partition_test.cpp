// Partition-window membership bitsets: link_blocked used to resolve both
// endpoints to address strings and scan each window's island by string
// comparison per message. The network now classifies each interned id into
// per-window bitsets (built lazily, since hosts intern at any time) and the
// per-message check is two bit tests. This test pins the refactor to the
// declarative semantics: across a many-window plan, hosts interned before
// AND after the first check, and times inside/outside/on window edges, the
// blocking decision must equal the string-matching reference.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/network.hpp"

namespace fortress::net {
namespace {

// The pre-bitset semantics, straight off the plan's vocabulary.
bool reference_blocked(const std::vector<PartitionWindow>& windows,
                       const Address& ax, const Address& ay, sim::Time t) {
  for (const PartitionWindow& w : windows) {
    if (!(t >= w.start && t < w.end)) continue;
    if (w.contains(ax) != w.contains(ay)) return true;
  }
  return false;
}

class NullHandler final : public Handler {
 public:
  void on_message(const Envelope&) override {}
};

std::vector<PartitionWindow> many_windows() {
  std::vector<PartitionWindow> windows;
  // 12 windows: overlapping times, nested/disjoint islands, an island
  // naming a host that is never interned, and an empty island.
  for (int w = 0; w < 10; ++w) {
    PartitionWindow win;
    win.start = 10.0 * w;
    win.end = win.start + 15.0;  // overlaps the next window
    for (int h = 0; h < 40; ++h) {
      if ((h + w) % 3 == 0) win.island.push_back("host-" + std::to_string(h));
    }
    if (w == 4) win.island.push_back("never-interned");
    windows.push_back(win);
  }
  windows.push_back({33.0, 34.0, {}});  // empty island blocks nothing
  windows.push_back({0.0, 200.0, {"late-0", "late-1", "host-0"}});
  return windows;
}

TEST(NetPartitionTest, BitsetDecisionsMatchStringReference) {
  sim::Simulator sim;
  NetworkConfig cfg;
  cfg.partitions = many_windows();
  Network net(sim, std::make_unique<FixedLatency>(0.0), cfg);

  NullHandler handler;
  std::vector<HostId> ids;
  for (int h = 0; h < 40; ++h) {
    ids.push_back(net.attach("host-" + std::to_string(h), handler));
  }

  const std::vector<sim::Time> sample_times = {0.0,  5.0,  9.999, 10.0, 14.0,
                                               15.0, 33.5, 60.0,  95.0, 104.9,
                                               105.0, 150.0, 250.0};
  std::size_t checks = 0;
  auto check_all_pairs = [&](sim::Time t) {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      for (std::size_t j = 0; j < ids.size(); ++j) {
        const bool expected =
            reference_blocked(cfg.partitions, net.address_of(ids[i]),
                              net.address_of(ids[j]), t);
        ASSERT_EQ(net.partitioned(ids[i], ids[j]), expected)
            << "t=" << t << " i=" << i << " j=" << j;
        ++checks;
      }
    }
  };

  // Walk the schedule via simulator events so sim.now() is the decision
  // time the network sees; intern two LATE hosts mid-schedule to exercise
  // the lazy bitset extension.
  for (sim::Time t : sample_times) {
    sim.schedule_at(t, [&, t] {
      check_all_pairs(t);
      if (t == 15.0) {
        ids.push_back(net.attach("late-0", handler));
        ids.push_back(net.attach("late-1", handler));
        check_all_pairs(t);
      }
    });
  }
  sim.run();
  EXPECT_GT(checks, 20000u);
}

TEST(NetPartitionTest, ResetRebuildsBitsetsForNewWindows) {
  sim::Simulator sim;
  NetworkConfig cfg;
  cfg.partitions = {{0.0, 100.0, {"a"}}};
  Network net(sim, std::make_unique<FixedLatency>(0.0), cfg);
  NullHandler handler;
  const HostId a = net.attach("a", handler);
  const HostId b = net.attach("b", handler);
  const HostId c = net.attach("c", handler);
  EXPECT_TRUE(net.partitioned(a, b));
  EXPECT_FALSE(net.partitioned(b, c));

  // Same window COUNT, different membership: stale bitsets would keep
  // blocking (a, b).
  NetworkConfig next;
  next.partitions = {{0.0, 100.0, {"b"}}};
  net.reset(std::make_unique<FixedLatency>(0.0), next);
  net.attach(a, handler);
  net.attach(b, handler);
  net.attach(c, handler);
  EXPECT_TRUE(net.partitioned(a, b));
  EXPECT_TRUE(net.partitioned(b, c));
  EXPECT_FALSE(net.partitioned(a, c));

  // And dropping the windows entirely unblocks everything.
  net.reset(std::make_unique<FixedLatency>(0.0), NetworkConfig{});
  net.attach(a, handler);
  net.attach(b, handler);
  EXPECT_FALSE(net.partitioned(a, b));
}

}  // namespace
}  // namespace fortress::net
