#include "replication/smr_replica.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "net/network.hpp"
#include "osl/machine.hpp"
#include "replication/service.hpp"
#include "sim/simulator.hpp"

namespace fortress::replication {
namespace {

class TestClient : public net::Handler {
 public:
  TestClient(net::Network& net, net::Address addr)
      : net_(net), addr_(std::move(addr)) {
    net_.attach(addr_, *this);
  }
  ~TestClient() override { net_.detach(addr_); }

  void on_message(const net::Envelope& env) override {
    auto msg = Message::decode(env.payload);
    if (msg && msg->type == MsgType::Response) responses.push_back(*msg);
  }

  void send_request(const RequestId& rid, const std::string& body,
                    const std::vector<net::Address>& servers) {
    Message msg;
    msg.type = MsgType::Request;
    msg.request_id = rid;
    msg.requester = addr_;
    msg.payload = bytes_of(body);
    for (const auto& s : servers) net_.send(addr_, s, msg.encode());
  }

  std::set<std::uint32_t> responders(const RequestId& rid,
                                     const std::string& body) const {
    std::set<std::uint32_t> out;
    for (const auto& r : responses) {
      if (r.request_id == rid && string_of(r.payload) == body) {
        out.insert(r.sender_index);
      }
    }
    return out;
  }

  std::vector<Message> responses;

 private:
  net::Network& net_;
  net::Address addr_;
};

class SmrTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kF = 1;
  static constexpr std::uint32_t kN = 3 * kF + 1;

  SmrTest()
      : net_(sim_, std::make_unique<net::FixedLatency>(0.5)),
        client_(net_, "client") {
    for (std::uint32_t i = 0; i < kN; ++i) {
      addrs_.push_back("replica-" + std::to_string(i));
    }
    SmrConfig cfg;
    cfg.f = kF;
    cfg.replicas = addrs_;
    cfg.progress_timeout = 30.0;
    cfg.heartbeat_interval = 5.0;
    for (std::uint32_t i = 0; i < kN; ++i) {
      machines_.push_back(std::make_unique<osl::Machine>(
          net_, osl::MachineConfig{addrs_[i], 1 << 10}));
      cfg.index = i;
      replicas_.push_back(std::make_unique<SmrReplica>(
          sim_, net_, registry_, std::make_unique<KvService>(), cfg));
      machines_.back()->set_application(replicas_.back().get());
    }
  }

  void boot_and_start() {
    for (std::uint32_t i = 0; i < kN; ++i) {
      machines_[i]->boot(i);
      replicas_[i]->start();
    }
  }

  sim::Simulator sim_;
  net::Network net_;
  crypto::KeyRegistry registry_{321};
  std::vector<net::Address> addrs_;
  std::vector<std::unique_ptr<osl::Machine>> machines_;
  std::vector<std::unique_ptr<SmrReplica>> replicas_;
  TestClient client_;
};

TEST_F(SmrTest, AllReplicasExecuteAndAgree) {
  boot_and_start();
  RequestId rid{"client", 1};
  client_.send_request(rid, "PUT a 1", addrs_);
  sim_.run_until(40.0);
  // Correct SMR replicas all execute and return identical responses.
  EXPECT_EQ(client_.responders(rid, "OK").size(), 4u);
  for (const auto& r : replicas_) EXPECT_EQ(r->executed_seq(), 1u);
}

TEST_F(SmrTest, ResponsesAreSigned) {
  boot_and_start();
  client_.send_request({"client", 1}, "PUT a 1", addrs_);
  sim_.run_until(40.0);
  ASSERT_FALSE(client_.responses.empty());
  for (const auto& r : client_.responses) {
    EXPECT_TRUE(verify_message(r, registry_));
  }
}

TEST_F(SmrTest, ConcurrentRequestsExecuteInSameOrderEverywhere) {
  boot_and_start();
  // Two clients race PUTs to the same key; all replicas must order them the
  // same way, whatever that order is.
  TestClient other(net_, "client2");
  client_.send_request({"client", 1}, "PUT k from-c1", addrs_);
  other.send_request({"client2", 1}, "PUT k from-c2", addrs_);
  sim_.run_until(60.0);
  client_.send_request({"client", 2}, "GET k", addrs_);
  sim_.run_until(120.0);
  // All four replicas agree on the final value.
  auto c1 = client_.responders({"client", 2}, "VALUE from-c1");
  auto c2 = client_.responders({"client", 2}, "VALUE from-c2");
  EXPECT_TRUE(c1.size() == 4u || c2.size() == 4u)
      << "c1=" << c1.size() << " c2=" << c2.size();
}

TEST_F(SmrTest, DedupAcrossRetries) {
  boot_and_start();
  RequestId rid{"client", 1};
  client_.send_request(rid, "PUT a 1", addrs_);
  sim_.run_until(40.0);
  client_.send_request(rid, "PUT a 1", addrs_);
  sim_.run_until(80.0);
  for (const auto& r : replicas_) EXPECT_EQ(r->executed_seq(), 1u);
}

TEST_F(SmrTest, LeaderCrashTriggersViewChangeAndReproposal) {
  boot_and_start();
  client_.send_request({"client", 1}, "PUT a 1", addrs_);
  sim_.run_until(40.0);

  machines_[0]->shutdown();  // leader of view 0 dies
  // New request arrives while the leader is dead.
  client_.send_request({"client", 2}, "PUT b 2", addrs_);
  sim_.run_until(300.0);

  // Survivors moved past view 0 and executed the request.
  for (std::uint32_t i = 1; i < kN; ++i) {
    EXPECT_GT(replicas_[i]->view(), 0u) << "replica " << i;
    EXPECT_EQ(replicas_[i]->executed_seq(), 2u) << "replica " << i;
  }
  EXPECT_GE(client_.responders({"client", 2}, "OK").size(), 3u);
}

TEST_F(SmrTest, RebootedReplicaRestoresStateFromQuorum) {
  boot_and_start();
  client_.send_request({"client", 1}, "PUT a 1", addrs_);
  client_.send_request({"client", 2}, "PUT b 2", addrs_);
  sim_.run_until(60.0);
  ASSERT_EQ(replicas_[3]->executed_seq(), 2u);

  machines_[3]->rerandomize(9);  // proactive obfuscation reboot
  EXPECT_TRUE(replicas_[3]->state_stale());
  sim_.run_until(120.0);
  // f+1 matching offers arrived; replica 3 is live again at seq 2.
  EXPECT_FALSE(replicas_[3]->state_stale());
  EXPECT_EQ(replicas_[3]->executed_seq(), 2u);
}

TEST_F(SmrTest, StaleReplicaDoesNotServeRequests) {
  boot_and_start();
  client_.send_request({"client", 1}, "PUT a 1", addrs_);
  sim_.run_until(40.0);
  machines_[3]->rerandomize(9);
  ASSERT_TRUE(replicas_[3]->state_stale());
  // While stale it neither acks proposals nor answers clients; a quorum of
  // the remaining three still commits new work.
  client_.send_request({"client", 2}, "PUT c 3", addrs_);
  sim_.run_until(200.0);
  EXPECT_GE(client_.responders({"client", 2}, "OK").size(), 3u);
}

TEST_F(SmrTest, QuorumLossStallsThenRecovers) {
  boot_and_start();
  // Take down two replicas: 2f+1 = 3 acks are impossible with only 2 left.
  machines_[2]->shutdown();
  machines_[3]->shutdown();
  client_.send_request({"client", 1}, "PUT a 1", addrs_);
  sim_.run_until(150.0);
  EXPECT_EQ(client_.responders({"client", 1}, "OK").size(), 0u);
  EXPECT_EQ(replicas_[0]->executed_seq(), 0u);
}

TEST_F(SmrTest, RequiresFourReplicasForFOne) {
  SmrConfig bad;
  bad.f = 1;
  bad.replicas = {"a", "b", "c"};  // only 3
  bad.index = 0;
  EXPECT_THROW(SmrReplica(sim_, net_, registry_,
                          std::make_unique<KvService>(), bad),
               ContractViolation);
}

}  // namespace
}  // namespace fortress::smr_test_adl_guard
