#include "crypto/signature.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"

namespace fortress::crypto {
namespace {

TEST(SignatureTest, SignVerifyRoundTrip) {
  KeyRegistry registry(1);
  SigningKey key = registry.enroll("server-0");
  Bytes msg = bytes_of("response payload");
  Signature sig = key.sign(msg);
  EXPECT_EQ(sig.signer.name, "server-0");
  EXPECT_TRUE(registry.verify(msg, sig));
}

TEST(SignatureTest, TamperedMessageFails) {
  KeyRegistry registry(1);
  SigningKey key = registry.enroll("server-0");
  Signature sig = key.sign(bytes_of("original"));
  EXPECT_FALSE(registry.verify(bytes_of("tampered"), sig));
}

TEST(SignatureTest, TamperedTagFails) {
  KeyRegistry registry(1);
  SigningKey key = registry.enroll("server-0");
  Bytes msg = bytes_of("msg");
  Signature sig = key.sign(msg);
  sig.tag[0] ^= 0x01;
  EXPECT_FALSE(registry.verify(msg, sig));
}

TEST(SignatureTest, ImpersonationFails) {
  // A principal cannot produce a signature that verifies as another.
  KeyRegistry registry(1);
  SigningKey mallory = registry.enroll("mallory");
  registry.enroll("server-0");
  Bytes msg = bytes_of("msg");
  Signature sig = mallory.sign(msg);
  sig.signer = PrincipalId{"server-0"};  // forged claim
  EXPECT_FALSE(registry.verify(msg, sig));
}

TEST(SignatureTest, UnenrolledSignerRejected) {
  KeyRegistry registry(1);
  KeyRegistry other(2);
  SigningKey foreign = other.enroll("stranger");
  Signature sig = foreign.sign(bytes_of("msg"));
  EXPECT_FALSE(registry.verify(bytes_of("msg"), sig));
}

TEST(SignatureTest, EnrollIsIdempotent) {
  KeyRegistry registry(9);
  SigningKey a = registry.enroll("node");
  SigningKey b = registry.enroll("node");
  Bytes msg = bytes_of("hello");
  EXPECT_EQ(a.sign(msg).tag, b.sign(msg).tag);
  EXPECT_EQ(registry.enrolled_count(), 1u);
}

TEST(SignatureTest, DistinctPrincipalsDistinctTags) {
  KeyRegistry registry(9);
  SigningKey a = registry.enroll("a");
  SigningKey b = registry.enroll("b");
  Bytes msg = bytes_of("same message");
  EXPECT_NE(a.sign(msg).tag, b.sign(msg).tag);
}

TEST(SignatureTest, DistinctMasterSeedsDistinctSecrets) {
  KeyRegistry r1(1), r2(2);
  SigningKey k1 = r1.enroll("node");
  SigningKey k2 = r2.enroll("node");
  Bytes msg = bytes_of("m");
  EXPECT_NE(k1.sign(msg).tag, k2.sign(msg).tag);
}

TEST(SignatureTest, ResetRekeysAndDropsEnrollments) {
  KeyRegistry registry(1);
  SigningKey old_key = registry.enroll("server-0");
  Bytes msg = bytes_of("payload");
  Signature old_sig = old_key.sign(msg);
  ASSERT_TRUE(registry.verify(msg, old_sig));

  registry.reset(2);
  // All enrollments are gone and old-master signatures no longer verify.
  EXPECT_EQ(registry.enrolled_count(), 0u);
  EXPECT_FALSE(registry.is_enrolled("server-0"));
  EXPECT_FALSE(registry.verify(msg, old_sig));
  // Re-enrolling under the new master yields a different, working secret.
  SigningKey new_key = registry.enroll("server-0");
  Signature new_sig = new_key.sign(msg);
  EXPECT_NE(new_sig.tag, old_sig.tag);
  EXPECT_TRUE(registry.verify(msg, new_sig));
  // Stale handles keep signing under the OLD secret: their tags fail.
  EXPECT_FALSE(registry.verify(msg, old_key.sign(msg)));

  // reset(same seed) is equivalent to fresh construction with that seed.
  registry.reset(1);
  EXPECT_EQ(registry.enroll("server-0").sign(msg).tag, old_sig.tag);
}

TEST(SignatureTest, IsEnrolled) {
  KeyRegistry registry(3);
  EXPECT_FALSE(registry.is_enrolled("x"));
  registry.enroll("x");
  EXPECT_TRUE(registry.is_enrolled("x"));
}

TEST(SignatureTest, DoubleSignatureChain) {
  // The FORTRESS response path: a server signs, then a proxy over-signs the
  // (message || server signature); a client verifies both.
  KeyRegistry registry(5);
  SigningKey server = registry.enroll("server-1");
  SigningKey proxy = registry.enroll("proxy-2");

  Bytes response = bytes_of("result=42");
  Signature server_sig = server.sign(response);

  Bytes over_signed = response;
  append(over_signed, bytes_of(server_sig.signer.name));
  append(over_signed, BytesView(server_sig.tag.data(), server_sig.tag.size()));
  Signature proxy_sig = proxy.sign(over_signed);

  EXPECT_TRUE(registry.verify(response, server_sig));
  EXPECT_TRUE(registry.verify(over_signed, proxy_sig));
}

}  // namespace
}  // namespace fortress::crypto
