// Delta-debugging minimizer tests: a multi-axis failing plan shrinks to a
// locally minimal repro, the minimization is deterministic, and the emitted
// JSON reproduces the failure end-to-end (encode → decode → predicate still
// true), which is the workflow `plan_tool minimize` automates.
#include <gtest/gtest.h>

#include <string>

#include "common/check.hpp"
#include "scenario/minimize.hpp"
#include "scenario/plan_codec.hpp"
#include "scenario/plan_generator.hpp"

namespace fortress::scenario {
namespace {

/// A deliberately loaded plan: every optional plane on, every list axis
/// populated — the haystack the minimizer must strip.
net::ScenarioPlan multi_axis_plan() {
  net::ScenarioPlan p;
  p.name = "minimize-haystack";
  p.latency = net::LatencySpec::exponential(0.02, 0.3);
  p.drop_probability = 0.05;
  p.duplicate_probability = 0.02;
  p.partitions.push_back({10.0, 30.0, {"s2-proxy-0"}});
  p.partitions.push_back({40.0, 80.0, {"s0-replica-0", "s0-replica-1"}});
  p.partitions.push_back({90.0, 95.0, {"s1-server-0"}});
  for (int i = 0; i < 6; ++i) {
    p.faults.push_back({net::FaultEvent::Target::Server, i % 2,
                        20.0 * (i + 1),
                        i % 2 ? net::FaultEvent::Kind::Crash
                              : net::FaultEvent::Kind::Recover});
  }
  p.attack.sybil_identities = 4;
  p.proxy_blacklist = true;
  p.detection_threshold = 3;
  p.service.enabled = true;
  p.service.policy = net::OverloadPolicy::ShedNewest;
  p.traffic.clients = 3;
  p.traffic.schedule = {{0.0, 2.0}, {50.0, 0.0}, {100.0, 1.0}, {150.0, 3.0}};
  p.population.clients = 2048;
  p.horizon_steps = 100;
  return p;
}

TEST(MinimizeTest, StripsEveryAxisThePredicateIgnores) {
  // The "failure" only needs one partition window and the service model —
  // everything else is noise the minimizer must remove.
  const PlanPredicate pred = [](const net::ScenarioPlan& p) {
    return !p.partitions.empty() && p.service.enabled;
  };
  const net::ScenarioPlan failing = multi_axis_plan();
  const MinimizeResult result = minimize_plan(failing, pred);

  EXPECT_TRUE(pred(result.plan));
  EXPECT_NO_THROW(result.plan.validate());
  EXPECT_GT(result.predicate_calls, 0u);
  EXPECT_GT(result.reductions, 0u);

  // The load-bearing axes survive, reduced to their minimum...
  EXPECT_EQ(result.plan.partitions.size(), 1u);
  EXPECT_TRUE(result.plan.service.enabled);
  // ...and every ignored axis is gone or at its floor.
  EXPECT_TRUE(result.plan.faults.empty());
  EXPECT_FALSE(result.plan.attack.enabled);
  EXPECT_EQ(result.plan.traffic.clients, 0);
  EXPECT_TRUE(result.plan.traffic.schedule.empty());
  EXPECT_FALSE(result.plan.population.enabled());
  EXPECT_FALSE(result.plan.proxy_blacklist);
  EXPECT_EQ(result.plan.drop_probability, 0.0);
  EXPECT_EQ(result.plan.duplicate_probability, 0.0);
  EXPECT_EQ(result.plan.latency.kind, net::LatencySpec::Kind::Fixed);
  EXPECT_EQ(result.plan.horizon_steps, 1u);
  EXPECT_EQ(result.plan.n_servers, 1);
  EXPECT_EQ(result.plan.n_proxies, 1);
}

TEST(MinimizeTest, ResultIsLocallyMinimal) {
  const PlanPredicate pred = [](const net::ScenarioPlan& p) {
    return !p.partitions.empty() && p.service.enabled;
  };
  const MinimizeResult result = minimize_plan(multi_axis_plan(), pred);
  // No single remaining reduction can still fail: dropping the last window
  // or the service plane flips the predicate.
  net::ScenarioPlan without_window = result.plan;
  without_window.partitions.clear();
  EXPECT_FALSE(pred(without_window));
  net::ScenarioPlan without_service = result.plan;
  without_service.service = net::ServiceModel{};
  EXPECT_FALSE(pred(without_service));
}

TEST(MinimizeTest, MinimizationIsDeterministic) {
  const PlanPredicate pred = [](const net::ScenarioPlan& p) {
    return !p.faults.empty();
  };
  const MinimizeResult a = minimize_plan(multi_axis_plan(), pred);
  const MinimizeResult b = minimize_plan(multi_axis_plan(), pred);
  EXPECT_EQ(plan_to_json(a.plan), plan_to_json(b.plan));
  EXPECT_EQ(a.predicate_calls, b.predicate_calls);
  EXPECT_EQ(a.reductions, b.reductions);
}

TEST(MinimizeTest, EmittedJsonReproducesTheFailureEndToEnd) {
  // The plan_tool workflow: minimize, print JSON, reload the JSON
  // elsewhere, re-run the predicate. The repro must survive the codec.
  const PlanPredicate pred = [](const net::ScenarioPlan& p) {
    for (const net::FaultEvent& f : p.faults) {
      if (f.kind == net::FaultEvent::Kind::Crash) return true;
    }
    return false;
  };
  const MinimizeResult result = minimize_plan(multi_axis_plan(), pred);
  ASSERT_EQ(result.plan.faults.size(), 1u);
  EXPECT_EQ(result.plan.faults[0].kind, net::FaultEvent::Kind::Crash);

  const std::string repro_json = plan_to_json(result.plan);
  const net::ScenarioPlan reloaded = plan_from_json(repro_json);
  EXPECT_TRUE(pred(reloaded));
  EXPECT_EQ(plan_to_json(reloaded), repro_json);
}

TEST(MinimizeTest, ShrinksGeneratorPlansToo) {
  // Fuzzer integration: whatever the generator emits must be minimizable.
  // Find a generated plan with at least two fault events and shrink it to
  // the single fault the predicate cares about.
  PlanGenerator gen(0x517);
  net::ScenarioPlan found;
  bool have = false;
  for (int i = 0; i < 64 && !have; ++i) {
    const net::ScenarioPlan p = gen.next();
    if (p.faults.size() >= 2) {
      found = p;
      have = true;
    }
  }
  ASSERT_TRUE(have) << "generator never emitted >= 2 faults in 64 plans";
  const PlanPredicate pred = [](const net::ScenarioPlan& p) {
    return !p.faults.empty();
  };
  const MinimizeResult result = minimize_plan(found, pred);
  EXPECT_EQ(result.plan.faults.size(), 1u);
  EXPECT_TRUE(result.plan.partitions.empty());
}

TEST(MinimizeTest, RefusesToMinimizeAPassingPlan) {
  const PlanPredicate never_fails = [](const net::ScenarioPlan&) {
    return false;
  };
  EXPECT_THROW(minimize_plan(multi_axis_plan(), never_fails),
               ContractViolation);
}

}  // namespace
}  // namespace fortress::scenario
