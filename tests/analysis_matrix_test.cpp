#include "analysis/matrix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace fortress::analysis {
namespace {

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 0), 7.0);
}

TEST(MatrixTest, OutOfBoundsViolatesContract) {
  Matrix m(2, 2);
  EXPECT_THROW(m(2, 0), ContractViolation);
  EXPECT_THROW(m(0, 2), ContractViolation);
}

TEST(MatrixTest, IdentityMultiplication) {
  Matrix a(3, 3);
  int v = 1;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = v++;
  }
  EXPECT_EQ(a * Matrix::identity(3), a);
  EXPECT_EQ(Matrix::identity(3) * a, a);
}

TEST(MatrixTest, KnownProduct) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  Matrix b(2, 2);
  b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
  Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(MatrixTest, DimensionMismatchViolatesContract) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a * b, ContractViolation);
  Matrix c(2, 2), d(3, 3);
  EXPECT_THROW(c + d, ContractViolation);
}

TEST(MatrixTest, AddSubtract) {
  Matrix a(1, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  Matrix b(1, 2);
  b(0, 0) = 10; b(0, 1) = 20;
  Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 11);
  Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(0, 1), 18);
}

TEST(MatrixTest, MatrixVectorProduct) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  std::vector<double> v{1.0, 0.0, -1.0};
  auto r = a * v;
  ASSERT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r[0], -2.0);
  EXPECT_DOUBLE_EQ(r[1], -2.0);
}

TEST(LuTest, SolvesKnownSystem) {
  // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
  Matrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 1; a(1, 0) = 1; a(1, 1) = 3;
  LuDecomposition lu(a);
  auto x = lu.solve(std::vector<double>{5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LuTest, PivotingHandlesZeroLeadingEntry) {
  Matrix a(2, 2);
  a(0, 0) = 0; a(0, 1) = 1; a(1, 0) = 1; a(1, 1) = 0;
  LuDecomposition lu(a);
  auto x = lu.solve(std::vector<double>{2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LuTest, SingularThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 2; a(1, 1) = 4;
  EXPECT_THROW(LuDecomposition{a}, std::runtime_error);
}

TEST(LuTest, Determinant) {
  Matrix a(2, 2);
  a(0, 0) = 3; a(0, 1) = 1; a(1, 0) = 4; a(1, 1) = 2;
  LuDecomposition lu(a);
  EXPECT_NEAR(lu.determinant(), 2.0, 1e-12);
}

TEST(LuTest, DeterminantSignWithPivot) {
  Matrix a(2, 2);
  a(0, 0) = 0; a(0, 1) = 1; a(1, 0) = 1; a(1, 1) = 0;  // det = -1
  LuDecomposition lu(a);
  EXPECT_NEAR(lu.determinant(), -1.0, 1e-12);
}

TEST(LuTest, RandomSystemsSolveAccurately) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.below(30));
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        a(i, j) = rng.uniform01() * 2.0 - 1.0;
      }
      a(i, i) += static_cast<double>(n);  // diagonally dominant: nonsingular
    }
    std::vector<double> x_true(n);
    for (auto& v : x_true) v = rng.uniform01() * 10.0 - 5.0;
    std::vector<double> b = a * x_true;
    LuDecomposition lu(a);
    auto x = lu.solve(b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x[i], x_true[i], 1e-8);
    }
  }
}

TEST(LuTest, MultiRhsSolve) {
  Matrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 0; a(1, 0) = 0; a(1, 1) = 4;
  Matrix b(2, 2);
  b(0, 0) = 2; b(0, 1) = 4; b(1, 0) = 8; b(1, 1) = 12;
  LuDecomposition lu(a);
  Matrix x = lu.solve(b);
  EXPECT_DOUBLE_EQ(x(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(x(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(x(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(x(1, 1), 3.0);
}

TEST(InverseTest, InverseTimesSelfIsIdentity) {
  Rng rng(9);
  const std::size_t n = 8;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform01();
    a(i, i) += 10.0;
  }
  Matrix prod = a * inverse(a);
  Matrix err = prod - Matrix::identity(n);
  EXPECT_LT(err.max_abs(), 1e-10);
}

}  // namespace
}  // namespace fortress::analysis
