// Route-resolved absorption analysis for the FORTRESS system: the chain's
// split absorbing states must (a) be a probability distribution, (b) track
// kappa the way §4 argues, and (c) agree with the Monte-Carlo route
// attribution.
#include <gtest/gtest.h>

#include "analysis/markov.hpp"
#include "common/check.hpp"
#include "montecarlo/engine.hpp"

namespace fortress::analysis {
namespace {

using model::AttackParams;
using model::SystemShape;

AttackParams params(double alpha, double kappa) {
  AttackParams p;
  p.alpha = alpha;
  p.kappa = kappa;
  return p;
}

TEST(S2RoutesTest, RequiresS2) {
  EXPECT_THROW(s2_route_probabilities(SystemShape::s1(), params(0.01, 0.5)),
               ContractViolation);
}

TEST(S2RoutesTest, ProbabilitiesSumToOne) {
  for (double kappa : {0.0, 0.3, 0.7, 1.0}) {
    auto r = s2_route_probabilities(SystemShape::s2(), params(0.01, kappa));
    EXPECT_NEAR(r.server_indirect + r.server_via_proxy + r.all_proxies, 1.0,
                1e-9)
        << "kappa=" << kappa;
  }
}

TEST(S2RoutesTest, KappaZeroKillsIndirectRoute) {
  auto r = s2_route_probabilities(SystemShape::s2(), params(0.01, 0.0));
  EXPECT_DOUBLE_EQ(r.server_indirect, 0.0);
  EXPECT_GT(r.server_via_proxy, 0.0);
  EXPECT_GT(r.all_proxies, 0.0);
}

TEST(S2RoutesTest, IndirectDominatesAtSmallAlphaAndPositiveKappa) {
  // Indirect fires at kappa*alpha per step; the other routes are O(alpha^2)
  // per step, so the indirect share approaches 1 as alpha -> 0.
  auto r = s2_route_probabilities(SystemShape::s2(), params(1e-4, 0.5));
  EXPECT_GT(r.server_indirect, 0.99);
}

TEST(S2RoutesTest, IndirectShareGrowsWithKappa) {
  double prev = -1.0;
  for (double kappa : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    auto r = s2_route_probabilities(SystemShape::s2(), params(0.02, kappa));
    EXPECT_GT(r.server_indirect, prev) << "kappa=" << kappa;
    prev = r.server_indirect;
  }
}

TEST(S2RoutesTest, MoreProxiesShrinkAllProxiesRoute) {
  auto r3 = s2_route_probabilities(SystemShape::s2(3), params(0.05, 0.0));
  auto r5 = s2_route_probabilities(SystemShape::s2(5), params(0.05, 0.0));
  EXPECT_GT(r3.all_proxies, r5.all_proxies);
}

struct RouteVsMcCase {
  double alpha;
  double kappa;
};

class RoutesVsMc : public ::testing::TestWithParam<RouteVsMcCase> {};

TEST_P(RoutesVsMc, ChainMatchesMonteCarloAttribution) {
  auto c = GetParam();
  auto p = params(c.alpha, c.kappa);
  auto chain = s2_route_probabilities(SystemShape::s2(), p);

  montecarlo::McConfig cfg;
  cfg.trials = 60000;
  cfg.seed = 555;
  cfg.threads = 4;
  cfg.max_steps = 1ull << 40;
  auto mc = montecarlo::estimate_lifetime(SystemShape::s2(), p,
                                          model::Obfuscation::Proactive,
                                          model::Granularity::Step, cfg);
  // Binomial standard error on 60k trials ~ 0.2%; allow 1% absolute.
  EXPECT_NEAR(mc.route_fraction(model::CompromiseRoute::ServerIndirect),
              chain.server_indirect, 0.01);
  EXPECT_NEAR(mc.route_fraction(model::CompromiseRoute::ServerViaProxy),
              chain.server_via_proxy, 0.01);
  EXPECT_NEAR(mc.route_fraction(model::CompromiseRoute::AllProxies),
              chain.all_proxies, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Grid, RoutesVsMc,
                         ::testing::Values(RouteVsMcCase{0.01, 0.5},
                                           RouteVsMcCase{0.01, 0.0},
                                           RouteVsMcCase{0.05, 0.2},
                                           RouteVsMcCase{0.02, 1.0}));

}  // namespace
}  // namespace fortress::analysis
