#include "common/bytes.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace fortress {
namespace {

TEST(BytesTest, HexRoundTrip) {
  Bytes data{0x00, 0x01, 0xab, 0xff, 0x7f};
  std::string hex = to_hex(data);
  EXPECT_EQ(hex, "0001abff7f");
  EXPECT_EQ(from_hex(hex), data);
}

TEST(BytesTest, HexEmptyInput) {
  EXPECT_EQ(to_hex(Bytes{}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(BytesTest, FromHexAcceptsUppercase) {
  EXPECT_EQ(from_hex("ABCDEF"), (Bytes{0xab, 0xcd, 0xef}));
}

TEST(BytesTest, FromHexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(BytesTest, FromHexRejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
  EXPECT_THROW(from_hex("0g"), std::invalid_argument);
}

TEST(BytesTest, StringConversionRoundTrip) {
  std::string s = "fortress";
  Bytes b = bytes_of(s);
  EXPECT_EQ(b.size(), s.size());
  EXPECT_EQ(string_of(b), s);
}

TEST(BytesTest, U64BigEndianRoundTrip) {
  Bytes buf;
  append_u64_be(buf, 0x0123456789abcdefULL);
  ASSERT_EQ(buf.size(), 8u);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0xef);
  EXPECT_EQ(read_u64_be(buf, 0), 0x0123456789abcdefULL);
}

TEST(BytesTest, U32BigEndianRoundTrip) {
  Bytes buf;
  append_u32_be(buf, 0xdeadbeef);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(read_u32_be(buf, 0), 0xdeadbeefu);
}

TEST(BytesTest, ReadPastEndThrows) {
  Bytes buf{1, 2, 3};
  EXPECT_THROW(read_u64_be(buf, 0), std::out_of_range);
  EXPECT_THROW(read_u32_be(buf, 1), std::out_of_range);
}

TEST(BytesTest, ReadAtOffset) {
  Bytes buf;
  append_u32_be(buf, 1);
  append_u64_be(buf, 42);
  EXPECT_EQ(read_u64_be(buf, 4), 42u);
}

TEST(BytesTest, AppendConcatenates) {
  Bytes a{1, 2};
  Bytes b{3, 4};
  append(a, b);
  EXPECT_EQ(a, (Bytes{1, 2, 3, 4}));
}

TEST(BytesTest, ConstantTimeEqual) {
  Bytes a{1, 2, 3};
  Bytes b{1, 2, 3};
  Bytes c{1, 2, 4};
  Bytes d{1, 2};
  EXPECT_TRUE(equal_constant_time(a, b));
  EXPECT_FALSE(equal_constant_time(a, c));
  EXPECT_FALSE(equal_constant_time(a, d));
  EXPECT_TRUE(equal_constant_time(Bytes{}, Bytes{}));
}

}  // namespace
}  // namespace fortress
