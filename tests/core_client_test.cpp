// Client acceptance rules (§3): the client is the last line of validation —
// these tests hand it forged, partial and replayed responses directly.
#include "core/client.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/directory.hpp"
#include "net/network.hpp"
#include "replication/message.hpp"
#include "sim/simulator.hpp"

namespace fortress::core {
namespace {

using replication::Message;
using replication::MsgType;
using replication::RequestId;

/// A handler standing in for a (possibly malicious) server or proxy.
class Responder : public net::Handler {
 public:
  Responder(net::Network& net, net::Address addr)
      : net_(net), addr_(std::move(addr)) {
    net_.attach(addr_, *this);
  }
  ~Responder() override { net_.detach(addr_); }

  void on_message(const net::Envelope& env) override {
    auto msg = Message::decode(env.payload);
    if (msg && msg->type == MsgType::Request) {
      requests.push_back(*msg);
      last_from = env.from;
    }
  }

  void send(const net::Address& to, const Message& msg) {
    net_.send(addr_, to, msg.encode());
  }

  std::vector<Message> requests;
  net::Address last_from;

 private:
  net::Network& net_;
  net::Address addr_;
};

class ClientTest : public ::testing::Test {
 protected:
  ClientTest() : net_(sim_, std::make_unique<net::FixedLatency>(0.5)) {}

  Directory fortified_directory() {
    Directory d;
    d.replication = ReplicationType::PrimaryBackup;
    d.proxies = {"proxy-0", "proxy-1"};
    d.server_principals = {"server-0", "server-1"};
    return d;
  }

  Directory smr_directory() {
    Directory d;
    d.replication = ReplicationType::StateMachine;
    d.f = 1;
    d.server_addrs = {"server-0", "server-1", "server-2", "server-3"};
    d.server_principals = d.server_addrs;
    return d;
  }

  Message response_for(const RequestId& rid, const std::string& body) {
    Message m;
    m.type = MsgType::Response;
    m.request_id = rid;
    m.payload = bytes_of(body);
    return m;
  }

  sim::Simulator sim_;
  net::Network net_;
  crypto::KeyRegistry registry_{11};
};

TEST_F(ClientTest, FortifiedRequiresBothSignatures) {
  Responder proxy0(net_, "proxy-0");
  Responder proxy1(net_, "proxy-1");
  crypto::SigningKey server_key = registry_.enroll("server-0");
  crypto::SigningKey proxy_key = registry_.enroll("proxy-0");

  Client client(sim_, net_, registry_, fortified_directory(),
                ClientConfig{"client"});
  std::string got;
  client.submit(bytes_of("GET x"),
                [&](std::uint64_t, const Bytes& r) { got = string_of(r); });
  sim_.run_until(2.0);
  ASSERT_EQ(proxy0.requests.size(), 1u);
  RequestId rid = proxy0.requests[0].request_id;

  // Server-signed only (no over-signature): rejected.
  Message only_server = response_for(rid, "VALUE 1");
  only_server.type = MsgType::ProxyResponse;
  replication::sign_message(only_server, server_key);
  proxy0.send("client", only_server);
  sim_.run_until(4.0);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(client.stats().rejected_responses, 1u);

  // Properly doubly-signed: accepted.
  Message good = response_for(rid, "VALUE 1");
  good.type = MsgType::ProxyResponse;
  replication::sign_message(good, server_key);
  replication::over_sign_message(good, proxy_key);
  proxy0.send("client", good);
  sim_.run_until(6.0);
  EXPECT_EQ(got, "VALUE 1");
}

TEST_F(ClientTest, FortifiedRejectsUnknownProxyOverSignature) {
  Responder proxy0(net_, "proxy-0");
  crypto::SigningKey server_key = registry_.enroll("server-0");
  crypto::SigningKey rogue_key = registry_.enroll("rogue-proxy");

  Client client(sim_, net_, registry_, fortified_directory(),
                ClientConfig{"client"});
  bool answered = false;
  client.submit(bytes_of("GET x"),
                [&](std::uint64_t, const Bytes&) { answered = true; });
  sim_.run_until(2.0);
  RequestId rid = proxy0.requests.at(0).request_id;

  // Over-signed by an enrolled-but-not-a-proxy principal: rejected even
  // though both signatures verify cryptographically.
  Message m = response_for(rid, "VALUE 1");
  m.type = MsgType::ProxyResponse;
  replication::sign_message(m, server_key);
  replication::over_sign_message(m, rogue_key);
  proxy0.send("client", m);
  sim_.run_until(4.0);
  EXPECT_FALSE(answered);
  EXPECT_GE(client.stats().rejected_responses, 1u);
}

TEST_F(ClientTest, FortifiedRejectsUnknownServerPrincipal) {
  Responder proxy0(net_, "proxy-0");
  crypto::SigningKey impostor = registry_.enroll("server-99");  // not in dir
  crypto::SigningKey proxy_key = registry_.enroll("proxy-0");

  Client client(sim_, net_, registry_, fortified_directory(),
                ClientConfig{"client"});
  bool answered = false;
  client.submit(bytes_of("GET x"),
                [&](std::uint64_t, const Bytes&) { answered = true; });
  sim_.run_until(2.0);
  RequestId rid = proxy0.requests.at(0).request_id;

  Message m = response_for(rid, "VALUE 1");
  m.type = MsgType::ProxyResponse;
  replication::sign_message(m, impostor);
  replication::over_sign_message(m, proxy_key);
  proxy0.send("client", m);
  sim_.run_until(4.0);
  EXPECT_FALSE(answered);
}

TEST_F(ClientTest, SmrNeedsFPlusOneMatchingVotes) {
  std::vector<std::unique_ptr<Responder>> servers;
  for (const auto& a : smr_directory().server_addrs) {
    servers.push_back(std::make_unique<Responder>(net_, a));
  }
  crypto::SigningKey k0 = registry_.enroll("server-0");
  crypto::SigningKey k1 = registry_.enroll("server-1");

  Client client(sim_, net_, registry_, smr_directory(),
                ClientConfig{"client"});
  std::string got;
  client.submit(bytes_of("GET x"),
                [&](std::uint64_t, const Bytes& r) { got = string_of(r); });
  sim_.run_until(2.0);
  RequestId rid = servers[0]->requests.at(0).request_id;

  // One vote: not enough (f = 1 needs 2).
  Message v0 = response_for(rid, "VALUE 1");
  replication::sign_message(v0, k0);
  servers[0]->send("client", v0);
  sim_.run_until(4.0);
  EXPECT_TRUE(got.empty());

  // A SECOND vote from the same signer must not count twice.
  servers[0]->send("client", v0);
  sim_.run_until(6.0);
  EXPECT_TRUE(got.empty());

  // A mismatching vote from another server doesn't complete it either.
  Message bad = response_for(rid, "VALUE 666");
  replication::sign_message(bad, k1);
  servers[1]->send("client", bad);
  sim_.run_until(8.0);
  EXPECT_TRUE(got.empty());

  // Matching second vote: accepted.
  Message v1 = response_for(rid, "VALUE 1");
  replication::sign_message(v1, k1);
  servers[1]->send("client", v1);
  sim_.run_until(10.0);
  EXPECT_EQ(got, "VALUE 1");
}

TEST_F(ClientTest, RetriesUntilDeadlineThenTimesOut) {
  Responder proxy0(net_, "proxy-0");
  Responder proxy1(net_, "proxy-1");
  ClientConfig cfg;
  cfg.address = "client";
  cfg.retry_interval = 10.0;
  cfg.deadline = 45.0;
  Client client(sim_, net_, registry_, fortified_directory(), cfg);

  bool timed_out = false;
  client.submit(
      bytes_of("GET x"), [](std::uint64_t, const Bytes&) { FAIL(); },
      [&](std::uint64_t, core::RequestOutcome outcome) {
        timed_out = true;
        EXPECT_EQ(outcome, core::RequestOutcome::TimedOut);
      });
  sim_.run_until(200.0);
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(client.stats().expired, 1u);
  // Initial send + backoff retries at 10, 30 (the next, at 70, is clamped
  // to the deadline timer at 45) => proxy saw 3 copies.
  EXPECT_EQ(proxy0.requests.size(), 3u);
  EXPECT_EQ(client.stats().retries, 2u);
}

TEST_F(ClientTest, LateDuplicateResponseIgnored) {
  Responder proxy0(net_, "proxy-0");
  Responder proxy1(net_, "proxy-1");
  crypto::SigningKey server_key = registry_.enroll("server-0");
  crypto::SigningKey proxy_key = registry_.enroll("proxy-0");
  Client client(sim_, net_, registry_, fortified_directory(),
                ClientConfig{"client"});

  int calls = 0;
  client.submit(bytes_of("GET x"),
                [&](std::uint64_t, const Bytes&) { ++calls; });
  sim_.run_until(2.0);
  RequestId rid = proxy0.requests.at(0).request_id;
  Message good = response_for(rid, "VALUE 1");
  good.type = MsgType::ProxyResponse;
  replication::sign_message(good, server_key);
  replication::over_sign_message(good, proxy_key);
  proxy0.send("client", good);
  proxy0.send("client", good);  // duplicate (e.g. from the other proxy)
  sim_.run_until(10.0);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(client.stats().completed, 1u);
}

TEST_F(ClientTest, RequestsGoToAllProxiesNotServers) {
  Responder proxy0(net_, "proxy-0");
  Responder proxy1(net_, "proxy-1");
  Client client(sim_, net_, registry_, fortified_directory(),
                ClientConfig{"client"});
  client.submit(bytes_of("GET x"), [](std::uint64_t, const Bytes&) {});
  sim_.run_until(2.0);
  EXPECT_EQ(proxy0.requests.size(), 1u);
  EXPECT_EQ(proxy1.requests.size(), 1u);
}

TEST_F(ClientTest, DirectoryWithNoTargetsViolatesContract) {
  Directory empty;
  EXPECT_THROW(Client(sim_, net_, registry_, empty, ClientConfig{"client"}),
               ContractViolation);
}

/// Records each request's arrival time and sender address (for the backoff
/// schedule and jitter tests, which assert on exact retry instants).
class TimedResponder : public net::Handler {
 public:
  TimedResponder(sim::Simulator& sim, net::Network& net, net::Address addr)
      : sim_(sim), net_(net), addr_(std::move(addr)) {
    net_.attach(addr_, *this);
  }
  ~TimedResponder() override { net_.detach(addr_); }

  void on_message(const net::Envelope& env) override {
    auto msg = Message::decode(env.payload);
    if (msg && msg->type == MsgType::Request) {
      times.push_back(sim_.now());
      senders.push_back(net_.address_of(env.from));
    }
  }

  std::vector<sim::Time> arrivals_from(const net::Address& who) const {
    std::vector<sim::Time> out;
    for (std::size_t i = 0; i < times.size(); ++i) {
      if (senders[i] == who) out.push_back(times[i]);
    }
    return out;
  }

  std::vector<sim::Time> times;
  std::vector<net::Address> senders;

 private:
  sim::Simulator& sim_;
  net::Network& net_;
  net::Address addr_;
};

TEST_F(ClientTest, BackoffScheduleIsCappedExponential) {
  TimedResponder proxy0(sim_, net_, "proxy-0");
  ClientConfig cfg;
  cfg.address = "client";
  cfg.retry_interval = 10.0;
  cfg.retry_multiplier = 2.0;
  cfg.retry_cap = 35.0;
  Client client(sim_, net_, registry_, fortified_directory(), cfg);
  client.submit(bytes_of("GET x"), [](std::uint64_t, const Bytes&) {});
  sim_.run_until(140.0);
  // Delays 10, 20, 35 (40 capped), 35, 35: sends at 0, 10, 30, 65, 100,
  // 135; +0.5 network latency each.
  ASSERT_EQ(proxy0.times.size(), 6u);
  EXPECT_DOUBLE_EQ(proxy0.times[0], 0.5);
  EXPECT_DOUBLE_EQ(proxy0.times[1], 10.5);
  EXPECT_DOUBLE_EQ(proxy0.times[2], 30.5);
  EXPECT_DOUBLE_EQ(proxy0.times[3], 65.5);
  EXPECT_DOUBLE_EQ(proxy0.times[4], 100.5);
  EXPECT_DOUBLE_EQ(proxy0.times[5], 135.5);
}

TEST_F(ClientTest, RetryBudgetExhaustionReportsOverloaded) {
  Responder proxy0(net_, "proxy-0");
  ClientConfig cfg;
  cfg.address = "client";
  cfg.retry_interval = 5.0;
  cfg.retry_multiplier = 2.0;
  cfg.retry_budget = 2;
  Client client(sim_, net_, registry_, fortified_directory(), cfg);
  bool overloaded = false;
  client.submit(
      bytes_of("GET x"), [](std::uint64_t, const Bytes&) { FAIL(); },
      [&](std::uint64_t, RequestOutcome outcome) {
        overloaded = true;
        EXPECT_EQ(outcome, RequestOutcome::Overloaded);
      });
  sim_.run_until(200.0);
  EXPECT_TRUE(overloaded);
  EXPECT_EQ(client.stats().gave_up, 1u);
  EXPECT_EQ(client.stats().expired, 0u);
  EXPECT_EQ(client.stats().retries, 2u);
  // Original + the two budgeted retries (at 5 and 15); the give-up fires
  // one further backoff later (t = 35) without re-sending.
  EXPECT_EQ(proxy0.requests.size(), 3u);
}

TEST_F(ClientTest, ResponseCancelsDeadlineTimer) {
  Responder proxy0(net_, "proxy-0");
  crypto::SigningKey server_key = registry_.enroll("server-0");
  crypto::SigningKey proxy_key = registry_.enroll("proxy-0");
  ClientConfig cfg;
  cfg.address = "client";
  cfg.retry_interval = 10.0;
  cfg.deadline = 45.0;
  Client client(sim_, net_, registry_, fortified_directory(), cfg);
  std::string got;
  bool timed_out = false;
  client.submit(
      bytes_of("GET x"),
      [&](std::uint64_t, const Bytes& r) { got = string_of(r); },
      [&](std::uint64_t, RequestOutcome) { timed_out = true; });
  sim_.run_until(44.0);  // one event-tick before the deadline timer at 45
  RequestId rid = proxy0.requests.at(0).request_id;
  Message good = response_for(rid, "VALUE 1");
  good.type = MsgType::ProxyResponse;
  replication::sign_message(good, server_key);
  replication::over_sign_message(good, proxy_key);
  proxy0.send("client", good);  // arrives at 44.5, beating the timer
  sim_.run_until(200.0);
  // Completion and timeout are mutually exclusive: the response cancelled
  // the pending deadline timer.
  EXPECT_EQ(got, "VALUE 1");
  EXPECT_FALSE(timed_out);
  EXPECT_EQ(client.stats().completed, 1u);
  EXPECT_EQ(client.stats().expired, 0u);
}

TEST_F(ClientTest, CompletionAndTimeoutMutuallyExclusivePerRequest) {
  Responder proxy0(net_, "proxy-0");
  crypto::SigningKey server_key = registry_.enroll("server-0");
  crypto::SigningKey proxy_key = registry_.enroll("proxy-0");
  ClientConfig cfg;
  cfg.address = "client";
  cfg.retry_interval = 10.0;
  cfg.deadline = 45.0;
  Client client(sim_, net_, registry_, fortified_directory(), cfg);

  constexpr int kRequests = 10;
  std::map<std::uint64_t, int> responded, timed_out;
  for (int i = 0; i < kRequests; ++i) {
    std::uint64_t seq = client.submit(
        bytes_of("GET x" + std::to_string(i)),
        [&](std::uint64_t s, const Bytes&) { ++responded[s]; },
        [&](std::uint64_t s, RequestOutcome) { ++timed_out[s]; });
    (void)seq;
  }
  sim_.run_until(2.0);
  ASSERT_EQ(proxy0.requests.size(), static_cast<std::size_t>(kRequests));
  // Answer the even-indexed requests just before their shared deadline; let
  // the odd ones expire.
  sim_.run_until(44.0);
  for (int i = 0; i < kRequests; i += 2) {
    Message good = response_for(proxy0.requests.at(static_cast<std::size_t>(i))
                                    .request_id,
                                "V" + std::to_string(i));
    good.type = MsgType::ProxyResponse;
    replication::sign_message(good, server_key);
    replication::over_sign_message(good, proxy_key);
    proxy0.send("client", good);
  }
  sim_.run_until(300.0);
  EXPECT_EQ(client.stats().completed, 5u);
  EXPECT_EQ(client.stats().expired, 5u);
  // Exactly ONE terminal callback per request, never both.
  for (std::uint64_t seq = 1; seq <= static_cast<std::uint64_t>(kRequests);
       ++seq) {
    EXPECT_EQ(responded[seq] + timed_out[seq], 1) << "seq " << seq;
  }
}

TEST_F(ClientTest, JitterIsDeterministicPerSeed) {
  TimedResponder proxy0(sim_, net_, "proxy-0");
  auto make_cfg = [](const std::string& addr, std::uint64_t seed) {
    ClientConfig cfg;
    cfg.address = addr;
    cfg.retry_interval = 10.0;
    cfg.retry_multiplier = 1.0;  // isolate the jitter term
    cfg.retry_jitter = 0.3;
    cfg.seed = seed;
    return cfg;
  };
  Client a(sim_, net_, registry_, fortified_directory(), make_cfg("a", 7));
  Client b(sim_, net_, registry_, fortified_directory(), make_cfg("b", 7));
  Client c(sim_, net_, registry_, fortified_directory(), make_cfg("c", 8));
  a.submit(bytes_of("GET x"), [](std::uint64_t, const Bytes&) {});
  b.submit(bytes_of("GET x"), [](std::uint64_t, const Bytes&) {});
  c.submit(bytes_of("GET x"), [](std::uint64_t, const Bytes&) {});
  sim_.run_until(100.0);

  auto ta = proxy0.arrivals_from("a");
  auto tb = proxy0.arrivals_from("b");
  auto tc = proxy0.arrivals_from("c");
  ASSERT_GE(ta.size(), 5u);
  // Same seed => bit-identical retry schedule; different seed diverges.
  EXPECT_EQ(ta, tb);
  EXPECT_NE(ta, tc);
  // Every jittered delay stays within [7, 13].
  for (std::size_t i = 1; i < ta.size(); ++i) {
    const double delay = ta[i] - ta[i - 1];
    EXPECT_GE(delay, 7.0);
    EXPECT_LE(delay, 13.0);
  }
}

}  // namespace
}  // namespace fortress::core
