#include "model/params.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace fortress::model {
namespace {

TEST(ParamsTest, Labels) {
  EXPECT_EQ(system_label(SystemKind::S0, Obfuscation::StartupOnly), "S0SO");
  EXPECT_EQ(system_label(SystemKind::S1, Obfuscation::Proactive), "S1PO");
  EXPECT_EQ(system_label(SystemKind::S2, Obfuscation::Proactive), "S2PO");
}

TEST(ParamsTest, DefaultAttackParamsValid) {
  AttackParams p;
  p.validate();  // must not throw
}

TEST(ParamsTest, ValidationRejectsBadAlpha) {
  AttackParams p;
  p.alpha = 0.0;
  EXPECT_THROW(p.validate(), ContractViolation);
  p.alpha = 1.5;
  EXPECT_THROW(p.validate(), ContractViolation);
}

TEST(ParamsTest, ValidationRejectsBadKappa) {
  AttackParams p;
  p.kappa = -0.1;
  EXPECT_THROW(p.validate(), ContractViolation);
  p.kappa = 1.1;
  EXPECT_THROW(p.validate(), ContractViolation);
}

TEST(ParamsTest, ValidationRejectsDegenerateChiAndPeriod) {
  AttackParams p;
  p.chi = 1;
  EXPECT_THROW(p.validate(), ContractViolation);
  p.chi = 1 << 16;
  p.period = 0;
  EXPECT_THROW(p.validate(), ContractViolation);
}

TEST(ParamsTest, OmegaFromAlphaChi) {
  AttackParams p;
  p.chi = 1 << 16;
  p.alpha = 0.01;
  EXPECT_EQ(p.omega(), 655u);  // round(0.01 * 65536)
  p.alpha = 1e-5;
  EXPECT_EQ(p.omega(), 1u);  // round(0.65536) -> 1 (floored at 1)
}

TEST(ParamsTest, OmegaNeverZeroOrAboveChi) {
  AttackParams p;
  p.chi = 64;
  p.alpha = 1e-9;
  EXPECT_EQ(p.omega(), 1u);
  p.alpha = 1.0;
  EXPECT_EQ(p.omega(), 64u);
}

TEST(ParamsTest, OmegaIndirectScalesByKappa) {
  AttackParams p;
  p.chi = 1 << 16;
  p.alpha = 0.01;
  p.kappa = 0.5;
  EXPECT_EQ(p.omega_indirect(), 328u);  // round(0.5*655)
  p.kappa = 0.0;
  EXPECT_EQ(p.omega_indirect(), 0u);
}

TEST(ShapeTest, PaperDefaults) {
  SystemShape s0 = SystemShape::s0();
  EXPECT_EQ(s0.kind, SystemKind::S0);
  EXPECT_EQ(s0.n_servers, 4);
  EXPECT_EQ(s0.smr_compromise, 2);
  s0.validate();

  SystemShape s1 = SystemShape::s1();
  EXPECT_EQ(s1.n_servers, 3);
  EXPECT_EQ(s1.n_proxies, 0);
  s1.validate();

  SystemShape s2 = SystemShape::s2();
  EXPECT_EQ(s2.n_proxies, 3);
  s2.validate();

  SystemShape s2big = SystemShape::s2(5);
  EXPECT_EQ(s2big.n_proxies, 5);
  s2big.validate();
}

TEST(ShapeTest, ValidationCatchesInconsistencies) {
  SystemShape bad = SystemShape::s0();
  bad.n_proxies = 2;  // S0 has no proxy tier
  EXPECT_THROW(bad.validate(), ContractViolation);

  SystemShape bad2 = SystemShape::s2();
  bad2.n_proxies = 0;
  EXPECT_THROW(bad2.validate(), ContractViolation);

  SystemShape bad3 = SystemShape::s0();
  bad3.smr_compromise = 5;  // exceeds n_servers
  EXPECT_THROW(bad3.validate(), ContractViolation);
}

}  // namespace
}  // namespace fortress::model
