#include "analysis/evaluator.hpp"

#include <gtest/gtest.h>

#include "analysis/markov.hpp"
#include "model/step_model.hpp"
#include "montecarlo/engine.hpp"

namespace fortress::analysis {
namespace {

using model::AttackParams;
using model::Granularity;
using model::Obfuscation;
using model::SystemKind;
using model::SystemShape;

AttackParams params(double alpha, double kappa = 0.5) {
  AttackParams p;
  p.alpha = alpha;
  p.kappa = kappa;
  return p;
}

TEST(EvaluatorTest, AvailabilityMatrix) {
  // Every (system, policy) cell has an analytic (or numeric) treatment.
  for (auto kind : {SystemKind::S0, SystemKind::S1, SystemKind::S2}) {
    for (auto obf : {Obfuscation::StartupOnly, Obfuscation::Proactive}) {
      EXPECT_TRUE(has_analytic(kind, obf));
    }
  }
}

TEST(EvaluatorTest, S2SoUsesNumericIntegration) {
  auto r = analytic_lifetime(SystemShape::s2(), params(0.01),
                             Obfuscation::StartupOnly);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->method, Method::NumericIntegration);
  EXPECT_GT(r->expected_lifetime, 0.0);
}

TEST(EvaluatorTest, PoPeriodOneUsesClosedForm) {
  auto r = analytic_lifetime(SystemShape::s2(), params(0.01),
                             Obfuscation::Proactive);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->method, Method::ClosedForm);
  EXPECT_NEAR(r->expected_lifetime,
              model::expected_lifetime_po(SystemShape::s2(), params(0.01)),
              1e-12);
}

TEST(EvaluatorTest, PoLongerPeriodUsesMarkov) {
  auto p = params(0.01);
  p.period = 4;
  auto r = analytic_lifetime(SystemShape::s0(), p, Obfuscation::Proactive);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->method, Method::MarkovChain);
  EXPECT_NEAR(r->expected_lifetime, expected_lifetime_markov(SystemShape::s0(), p),
              1e-12);
}

TEST(EvaluatorTest, SoUsesClosedForms) {
  auto r1 = analytic_lifetime(SystemShape::s1(), params(0.01),
                              Obfuscation::StartupOnly);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->method, Method::ClosedForm);
  EXPECT_NEAR(r1->expected_lifetime, model::expected_lifetime_s1_so(params(0.01)),
              1e-12);

  auto r0 = analytic_lifetime(SystemShape::s0(), params(0.01),
                              Obfuscation::StartupOnly);
  ASSERT_TRUE(r0.has_value());
  EXPECT_NEAR(r0->expected_lifetime,
              model::expected_lifetime_s0_so(SystemShape::s0(), params(0.01)),
              1e-12);
}

TEST(EvaluatorTest, MethodNames) {
  EXPECT_STREQ(to_string(Method::ClosedForm), "closed-form");
  EXPECT_STREQ(to_string(Method::MarkovChain), "markov-chain");
  EXPECT_STREQ(to_string(Method::Unavailable), "unavailable");
}

// Cross-validation: the analytic evaluator agrees with Monte-Carlo within
// the 99% confidence interval for every analytically solvable combination.
struct CrossCase {
  SystemKind kind;
  Obfuscation obf;
  double alpha;
};

class AnalyticVsMcSweep : public ::testing::TestWithParam<CrossCase> {};

TEST_P(AnalyticVsMcSweep, McCiCoversAnalyticValue) {
  const auto c = GetParam();
  SystemShape shape = c.kind == SystemKind::S0 ? SystemShape::s0()
                      : c.kind == SystemKind::S1 ? SystemShape::s1()
                                                 : SystemShape::s2();
  auto p = params(c.alpha, 0.5);
  auto analytic = analytic_lifetime(shape, p, c.obf);
  ASSERT_TRUE(analytic.has_value());

  montecarlo::McConfig cfg;
  cfg.trials = 60000;
  cfg.seed = 77;
  cfg.ci_level = 0.99;
  cfg.max_steps = 1ull << 40;
  auto mc = montecarlo::estimate_lifetime(shape, p, c.obf, Granularity::Step,
                                          cfg);
  EXPECT_EQ(mc.censored, 0u);
  // Allow the tiny quantization gap between alpha and omega/chi by widening
  // the tolerance to max(CI half-width, 1.5% relative).
  double tol = std::max(mc.ci.width() / 2.0,
                        0.015 * analytic->expected_lifetime);
  EXPECT_NEAR(mc.expected_lifetime(), analytic->expected_lifetime, tol)
      << model::system_label(c.kind, c.obf) << " alpha=" << c.alpha;
}

INSTANTIATE_TEST_SUITE_P(
    Combos, AnalyticVsMcSweep,
    ::testing::Values(CrossCase{SystemKind::S0, Obfuscation::Proactive, 0.01},
                      CrossCase{SystemKind::S1, Obfuscation::Proactive, 0.01},
                      CrossCase{SystemKind::S2, Obfuscation::Proactive, 0.01},
                      CrossCase{SystemKind::S0, Obfuscation::StartupOnly, 0.01},
                      CrossCase{SystemKind::S1, Obfuscation::StartupOnly, 0.01},
                      CrossCase{SystemKind::S0, Obfuscation::Proactive, 0.002},
                      CrossCase{SystemKind::S1, Obfuscation::StartupOnly, 0.002}));

}  // namespace
}  // namespace fortress::analysis
