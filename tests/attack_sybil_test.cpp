// Sybil evasion (§2.2): spreading indirect probes over many presented
// identities keeps each one under the proxies' per-source detection
// threshold — the logging defence is per-source, so identity rotation is
// the attacker's counter-move, and the reason kappa cannot be driven to 0
// by detection alone.
#include "attack/derand_attacker.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/live_system.hpp"
#include "replication/service.hpp"

namespace fortress::attack {
namespace {

struct Outcome {
  std::uint64_t probes_delivered = 0;  // forwarded to the server tier
  int identities_blacklisted = 0;
  std::uint64_t server_crashes = 0;
};

Outcome run(unsigned sybil_identities, double total_rate) {
  sim::Simulator sim;
  core::LiveConfig cfg;
  cfg.keyspace = 1ull << 16;
  cfg.policy = osl::ObfuscationPolicy::Rerandomize;
  cfg.step_duration = 100.0;
  cfg.seed = 17;
  cfg.proxy_blacklist = true;
  cfg.detection.threshold = 5;
  cfg.detection.window = 500.0;
  core::LiveS2 system(sim, cfg, [](std::uint32_t) {
    return std::make_unique<replication::KvService>();
  });
  system.start();
  sim.run_until(5.0);

  AttackerConfig acfg;
  acfg.keyspace = cfg.keyspace;
  acfg.step_duration = cfg.step_duration;
  acfg.probes_per_step = 0.0001;  // direct channels idle
  acfg.indirect_probes_per_step = total_rate;
  acfg.sybil_identities = sybil_identities;
  acfg.seed = 29;
  DerandAttacker attacker(sim, system.network(), acfg);
  attacker.set_indirect_channel(system.directory().proxies);
  attacker.start();

  sim.run_until(100.0 * 100);

  Outcome out;
  for (int i = 0; i < system.n_servers(); ++i) {
    out.server_crashes += system.server_machine(i).child_crashes();
  }
  // Count identities blacklisted by at least one proxy.
  for (unsigned s = 0; s < sybil_identities; ++s) {
    net::Address id = s == 0 ? net::Address("attacker")
                             : net::Address("attacker-sybil-" +
                                            std::to_string(s));
    for (int p = 0; p < system.n_proxies(); ++p) {
      if (system.proxy(p).blacklisted(id)) {
        ++out.identities_blacklisted;
        break;
      }
    }
  }
  out.probes_delivered = attacker.stats().indirect_probes;
  return out;
}

TEST(SybilTest, SingleIdentityAtHighRateIsShutOut) {
  Outcome o = run(1, 12.0);
  EXPECT_EQ(o.identities_blacklisted, 1);
  // After blacklisting, forwarded probes stop: server crashes stay small
  // relative to the 12 * 100 = 1200 probes sent.
  EXPECT_LT(o.server_crashes, 200u);
}

TEST(SybilTest, ManyIdentitiesSustainTheSameRateUndetected) {
  // 12 probes/step spread over 96 identities: each probe crashes children
  // at all 3 servers (3 suspicion events at the forwarding proxy), so a
  // single identity must stay under ~threshold/3 probes per window. With
  // 96 identities each sends 12*500/100/96 ~ 0.6 probes per window — well
  // below detection.
  Outcome o = run(96, 12.0);
  EXPECT_EQ(o.identities_blacklisted, 0);
  // The full probe stream reaches the servers (3 server copies per probe).
  EXPECT_GT(o.server_crashes, 2000u);
}

TEST(SybilTest, CrashVolumeScalesWithEvasion) {
  Outcome shut_out = run(1, 12.0);
  Outcome evading = run(96, 12.0);
  EXPECT_GT(evading.server_crashes, 5 * shut_out.server_crashes);
}

}  // namespace
}  // namespace fortress::attack
