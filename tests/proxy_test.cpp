#include "proxy/proxy_node.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "net/network.hpp"
#include "osl/machine.hpp"
#include "osl/probe.hpp"
#include "proxy/probe_log.hpp"
#include "replication/pb_replica.hpp"
#include "replication/service.hpp"
#include "sim/simulator.hpp"

namespace fortress::proxy {
namespace {

using replication::Message;
using replication::MsgType;
using replication::RequestId;

class ClientEndpoint : public net::Handler {
 public:
  ClientEndpoint(net::Network& net, net::Address addr)
      : net_(net), addr_(std::move(addr)) {
    net_.attach(addr_, *this);
  }
  ~ClientEndpoint() override { net_.detach(addr_); }

  void on_message(const net::Envelope& env) override {
    auto msg = Message::decode(env.payload);
    if (msg) responses.push_back(*msg);
  }

  void send_request(const RequestId& rid, const std::string& body,
                    const net::Address& proxy) {
    Message msg;
    msg.type = MsgType::Request;
    msg.request_id = rid;
    msg.requester = addr_;
    msg.payload = bytes_of(body);
    net_.send(addr_, proxy, msg.encode());
  }

  std::vector<Message> responses;
  const net::Address& address() const { return addr_; }

 private:
  net::Network& net_;
  net::Address addr_;
};

// Full slice: one proxy in front of a 3-replica PB tier.
class ProxyTest : public ::testing::Test {
 protected:
  ProxyTest() : net_(sim_, std::make_unique<net::FixedLatency>(0.5)) {
    for (int i = 0; i < 3; ++i) {
      server_addrs_.push_back("server-" + std::to_string(i));
    }
    replication::PbConfig pb;
    pb.replicas = server_addrs_;
    for (int i = 0; i < 3; ++i) {
      server_machines_.push_back(std::make_unique<osl::Machine>(
          net_, osl::MachineConfig{server_addrs_[static_cast<std::size_t>(i)],
                                   kChi}));
      pb.index = static_cast<std::uint32_t>(i);
      replicas_.push_back(std::make_unique<replication::PbReplica>(
          sim_, net_, registry_, std::make_unique<replication::KvService>(),
          pb));
      server_machines_.back()->set_application(replicas_.back().get());
    }
    ProxyConfig cfg;
    cfg.address = "proxy-0";
    cfg.servers = server_addrs_;
    cfg.detection.window = 100.0;
    cfg.detection.threshold = 3;
    osl::MachineConfig mc{"proxy-0", kChi};
    mc.processes_request_payloads = false;  // proxies do no processing
    proxy_machine_ = std::make_unique<osl::Machine>(net_, mc);
    proxy_ = std::make_unique<ProxyNode>(sim_, net_, registry_, cfg);
    proxy_machine_->set_application(proxy_.get());
  }

  void boot_and_start() {
    for (int i = 0; i < 3; ++i) {
      server_machines_[static_cast<std::size_t>(i)]->boot(
          static_cast<osl::RandKey>(10));  // shared server key
      replicas_[static_cast<std::size_t>(i)]->start();
    }
    proxy_machine_->boot(20);
    proxy_->start();
    sim_.run_until(sim_.now() + 5.0);  // let connections establish
  }

  static constexpr std::uint64_t kChi = 1 << 10;

  sim::Simulator sim_;
  net::Network net_;
  crypto::KeyRegistry registry_{77};
  std::vector<net::Address> server_addrs_;
  std::vector<std::unique_ptr<osl::Machine>> server_machines_;
  std::vector<std::unique_ptr<replication::PbReplica>> replicas_;
  std::unique_ptr<osl::Machine> proxy_machine_;
  std::unique_ptr<ProxyNode> proxy_;
};

TEST(ProbeLogTest, ScoreAndWindowExpiry) {
  const net::HostId evil = 7;
  ProbeLog log(DetectionConfig{100.0, 3});
  log.record(evil, Suspicion::MalformedRequest, 10.0);
  log.record(evil, Suspicion::CorrelatedCrash, 20.0);
  EXPECT_EQ(log.score(evil, 25.0), 2u);
  EXPECT_FALSE(log.flagged(evil, 25.0));
  log.record(evil, Suspicion::CorrelatedCrash, 30.0);
  EXPECT_TRUE(log.flagged(evil, 35.0));
  // Events age out of the window: at t=115 only the 20.0 and 30.0 events
  // remain; at t=200 all have expired.
  EXPECT_EQ(log.score(evil, 115.0), 2u);
  EXPECT_FALSE(log.flagged(evil, 115.0));
  EXPECT_EQ(log.score(evil, 200.0), 0u);
  EXPECT_EQ(log.total_events(evil), 3u);
}

TEST(ProbeLogTest, SourcesAreIndependent) {
  const net::HostId a = 1, b = 2;
  ProbeLog log(DetectionConfig{100.0, 2});
  log.record(a, Suspicion::MalformedRequest, 1.0);
  log.record(a, Suspicion::MalformedRequest, 2.0);
  log.record(b, Suspicion::MalformedRequest, 3.0);
  EXPECT_TRUE(log.flagged(a, 5.0));
  EXPECT_FALSE(log.flagged(b, 5.0));
  auto flagged = log.flagged_sources(5.0);
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0], a);
}

TEST(ProbeLogTest, UnknownSourceScoresZero) {
  const net::HostId ghost = 42;
  ProbeLog log(DetectionConfig{});
  EXPECT_EQ(log.score(ghost, 1.0), 0u);
  EXPECT_FALSE(log.flagged(ghost, 1.0));
  EXPECT_EQ(log.total_events(ghost), 0u);
}

TEST_F(ProxyTest, ForwardsAndOverSignsResponses) {
  boot_and_start();
  ClientEndpoint client(net_, "client");
  client.send_request({"client", 1}, "PUT a 1", "proxy-0");
  sim_.run_until(sim_.now() + 30.0);

  ASSERT_FALSE(client.responses.empty());
  const Message& r = client.responses.front();
  EXPECT_EQ(r.type, MsgType::ProxyResponse);
  EXPECT_EQ(string_of(r.payload), "OK");
  ASSERT_TRUE(r.signature.has_value());
  ASSERT_TRUE(r.over_signature.has_value());
  EXPECT_EQ(r.over_signature->signer.name, "proxy-0");
  EXPECT_TRUE(replication::verify_message(r, registry_));
  EXPECT_TRUE(replication::verify_over_signature(r, registry_));
}

TEST_F(ProxyTest, OnlyOneResponsePerClientPerRequest) {
  boot_and_start();
  ClientEndpoint client(net_, "client");
  client.send_request({"client", 1}, "PUT a 1", "proxy-0");
  sim_.run_until(sim_.now() + 40.0);
  // Three servers answered the proxy, but the client hears exactly once.
  EXPECT_EQ(client.responses.size(), 1u);
  EXPECT_EQ(proxy_->stats().responses_delivered, 1u);
}

TEST_F(ProxyTest, MalformedRequestsAreLoggedNotForwarded) {
  boot_and_start();
  ClientEndpoint attacker(net_, "attacker");
  std::uint64_t forwarded_before = proxy_->stats().requests_forwarded;
  net_.send("attacker", "proxy-0", bytes_of("garbage-bytes"));
  sim_.run_until(sim_.now() + 5.0);
  EXPECT_EQ(proxy_->stats().malformed_requests, 1u);
  EXPECT_EQ(proxy_->stats().requests_forwarded, forwarded_before);
  EXPECT_EQ(proxy_->probe_log().total_events(net_.id_of("attacker")), 1u);
}

TEST_F(ProxyTest, EmbeddedProbeCrashesServerChildAndProxyObserves) {
  boot_and_start();
  ClientEndpoint attacker(net_, "attacker");
  Message msg;
  msg.type = MsgType::Request;
  msg.request_id = RequestId{"attacker", 1};
  msg.requester = "attacker";
  msg.payload = osl::encode_probe(999);  // wrong key (server key is 10)
  net_.send("attacker", "proxy-0", msg.encode());
  sim_.run_until(sim_.now() + 10.0);

  // Every server child serving the forwarded copies crashed...
  for (auto& m : server_machines_) {
    EXPECT_EQ(m->child_crashes(), 1u);
  }
  // ...the PROXY observed it and attributed it to the attacker...
  EXPECT_GE(proxy_->stats().server_crashes_observed, 1u);
  EXPECT_GE(proxy_->probe_log().total_events(net_.id_of("attacker")), 1u);
  // ...and the attacker got no response at all.
  EXPECT_TRUE(attacker.responses.empty());
}

TEST_F(ProxyTest, RepeatedProbesGetSourceBlacklisted) {
  boot_and_start();
  ClientEndpoint attacker(net_, "attacker");
  for (std::uint64_t i = 1; i <= 5; ++i) {
    Message msg;
    msg.type = MsgType::Request;
    msg.request_id = RequestId{"attacker", i};
    msg.requester = "attacker";
    msg.payload = osl::encode_probe(500 + i);
    net_.send("attacker", "proxy-0", msg.encode());
    sim_.run_until(sim_.now() + 10.0);
  }
  EXPECT_TRUE(proxy_->blacklisted("attacker"));
  // Further requests (even well-formed ones) are dropped.
  std::uint64_t forwarded = proxy_->stats().requests_forwarded;
  attacker.send_request({"attacker", 99}, "GET a", "proxy-0");
  sim_.run_until(sim_.now() + 10.0);
  EXPECT_EQ(proxy_->stats().requests_forwarded, forwarded);
  EXPECT_GE(proxy_->stats().requests_from_blacklisted, 1u);
}

TEST_F(ProxyTest, LegitimateClientNotBlacklistedAlongsideAttacker) {
  boot_and_start();
  ClientEndpoint attacker(net_, "attacker");
  ClientEndpoint honest(net_, "honest");
  for (std::uint64_t i = 1; i <= 5; ++i) {
    Message msg;
    msg.type = MsgType::Request;
    msg.request_id = RequestId{"attacker", i};
    msg.requester = "attacker";
    msg.payload = osl::encode_probe(600 + i);
    net_.send("attacker", "proxy-0", msg.encode());
    sim_.run_until(sim_.now() + 5.0);
    honest.send_request({"honest", i}, "PUT k v", "proxy-0");
    sim_.run_until(sim_.now() + 5.0);
  }
  EXPECT_TRUE(proxy_->blacklisted("attacker"));
  EXPECT_FALSE(proxy_->blacklisted("honest"));
  EXPECT_FALSE(honest.responses.empty());
}

TEST_F(ProxyTest, ReconnectsAfterServerReboot) {
  boot_and_start();
  server_machines_[0]->rerandomize(30);
  sim_.run_until(sim_.now() + 10.0);  // reconnect_delay passes
  ClientEndpoint client(net_, "client");
  client.send_request({"client", 1}, "PUT a 1", "proxy-0");
  sim_.run_until(sim_.now() + 30.0);
  EXPECT_FALSE(client.responses.empty());
}

TEST_F(ProxyTest, UnsolicitedServerResponseIgnored) {
  boot_and_start();
  // A (compromised) server sends a response for a request the proxy never
  // forwarded; the proxy must not deliver it to anyone.
  Message fake;
  fake.type = MsgType::Response;
  fake.request_id = RequestId{"nobody", 1};
  fake.payload = bytes_of("bogus");
  net_.send(server_addrs_[0], "proxy-0", fake.encode());
  sim_.run_until(sim_.now() + 5.0);
  EXPECT_EQ(proxy_->stats().responses_delivered, 0u);
}

}  // namespace
}  // namespace fortress::proxy
