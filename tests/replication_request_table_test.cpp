// The flat hashed per-request table behind both replica planes: lookup by
// borrowed key, operator[]-style insertion, growth under collisions, and
// insertion-ordered iteration (what the SMR re-proposal path sorts).
#include "replication/request_table.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/rng.hpp"

namespace fortress::replication {
namespace {

struct Entry {
  RequestId rid;
  std::uint64_t hash = 0;
  int value = 0;
};

std::uint64_t h(const std::string& client, std::uint64_t seq) {
  return request_key_hash(client, seq);
}

TEST(RequestTableTest, FindMissReturnsNull) {
  RequestTable<Entry> table;
  EXPECT_EQ(table.find("nobody", 1, h("nobody", 1)), nullptr);
  EXPECT_TRUE(table.empty());
}

TEST(RequestTableTest, InsertThenFind) {
  RequestTable<Entry> table;
  Entry& e = table.find_or_insert("alice", 7, h("alice", 7));
  e.value = 42;
  EXPECT_EQ(table.size(), 1u);

  Entry* found = table.find("alice", 7, h("alice", 7));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->value, 42);
  EXPECT_EQ(found->rid, (RequestId{"alice", 7}));
  EXPECT_EQ(found->hash, h("alice", 7));

  // Same client, different seq (and vice versa) are distinct records.
  EXPECT_EQ(table.find("alice", 8, h("alice", 8)), nullptr);
  EXPECT_EQ(table.find("alicf", 7, h("alicf", 7)), nullptr);

  // find_or_insert on an existing key returns the same record.
  EXPECT_EQ(&table.find_or_insert("alice", 7, h("alice", 7)), found);
  EXPECT_EQ(table.size(), 1u);
}

TEST(RequestTableTest, GrowsThroughManyInsertsAndKeepsAll) {
  RequestTable<Entry> table;
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    const std::string client = "client-" + std::to_string(i % 97);
    const std::uint64_t seq = static_cast<std::uint64_t>(i);
    Entry& e = table.find_or_insert(client, seq, h(client, seq));
    e.value = i;
  }
  EXPECT_EQ(table.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    const std::string client = "client-" + std::to_string(i % 97);
    const std::uint64_t seq = static_cast<std::uint64_t>(i);
    Entry* e = table.find(client, seq, h(client, seq));
    ASSERT_NE(e, nullptr) << i;
    EXPECT_EQ(e->value, i);
  }
}

TEST(RequestTableTest, SurvivesCollidingHashes) {
  // Deliberately feed every record the SAME hash: correctness must come
  // from the key comparison, with linear probing soaking up the pile-up.
  RequestTable<Entry> table;
  for (int i = 0; i < 300; ++i) {
    Entry& e = table.find_or_insert("c", static_cast<std::uint64_t>(i), 12345);
    e.value = i;
  }
  for (int i = 0; i < 300; ++i) {
    Entry* e = table.find("c", static_cast<std::uint64_t>(i), 12345);
    ASSERT_NE(e, nullptr) << i;
    EXPECT_EQ(e->value, i);
  }
  EXPECT_EQ(table.find("c", 300, 12345), nullptr);
}

TEST(RequestTableTest, EntriesAreInsertionOrdered) {
  RequestTable<Entry> table;
  table.find_or_insert("zeta", 1, h("zeta", 1));
  table.find_or_insert("alpha", 9, h("alpha", 9));
  table.find_or_insert("mu", 4, h("mu", 4));
  ASSERT_EQ(table.entries().size(), 3u);
  EXPECT_EQ(table.entries()[0].rid.client, "zeta");
  EXPECT_EQ(table.entries()[1].rid.client, "alpha");
  EXPECT_EQ(table.entries()[2].rid.client, "mu");
}

TEST(RequestTableTest, ClearForgetsEverything) {
  RequestTable<Entry> table;
  table.find_or_insert("a", 1, h("a", 1));
  table.clear();
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.find("a", 1, h("a", 1)), nullptr);
  // Reusable after clear.
  table.find_or_insert("b", 2, h("b", 2)).value = 5;
  EXPECT_EQ(table.find("b", 2, h("b", 2))->value, 5);
}

TEST(RequestTableTest, HashSpreadsRealisticKeys) {
  // Not a strict avalanche test — just assert the obvious degenerate
  // collisions don't happen for campaign-shaped keys.
  std::set<std::uint64_t> seen;
  for (int c = 0; c < 64; ++c) {
    for (std::uint64_t s = 0; s < 64; ++s) {
      seen.insert(request_key_hash("sybil-" + std::to_string(c), s));
    }
  }
  EXPECT_EQ(seen.size(), 64u * 64u);
}

}  // namespace
}  // namespace fortress::replication
