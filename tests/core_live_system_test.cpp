// End-to-end tests of the assembled live deployments: request round-trips
// through every system class, failover, obfuscation clocking and the
// class-specific compromise predicates.
#include "core/live_system.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>

#include "osl/probe.hpp"
#include "replication/service.hpp"

namespace fortress::core {
namespace {

LiveConfig test_config(osl::ObfuscationPolicy policy) {
  LiveConfig cfg;
  cfg.keyspace = 1 << 10;
  cfg.policy = policy;
  cfg.step_duration = 200.0;
  cfg.latency = net::LatencySpec::uniform(0.1, 0.3);
  cfg.seed = 42;
  return cfg;
}

ServiceFactory kv_factory() {
  return [](std::uint32_t) { return std::make_unique<replication::KvService>(); };
}

DeterministicServiceFactory det_kv_factory() {
  return [](std::uint32_t) { return std::make_unique<replication::KvService>(); };
}

std::vector<std::string> collect_responses(sim::Simulator& sim, Client& client,
                                           const std::vector<std::string>& cmds,
                                           sim::Time budget_per_cmd = 60.0) {
  std::vector<std::string> out;
  for (const std::string& cmd : cmds) {
    bool done = false;
    client.submit(bytes_of(cmd), [&](std::uint64_t, const Bytes& resp) {
      out.push_back(string_of(resp));
      done = true;
    });
    sim::Time deadline = sim.now() + budget_per_cmd;
    while (!done && sim.now() < deadline) {
      sim.run_until(sim.now() + 1.0);
    }
    if (!done) out.push_back("<timeout>");
  }
  return out;
}

TEST(LiveS1Test, EndToEndRequests) {
  sim::Simulator sim;
  LiveS1 system(sim, test_config(osl::ObfuscationPolicy::Rerandomize),
                kv_factory());
  system.start();
  Client client(sim, system.network(), system.registry(), system.directory(),
                ClientConfig{"client"});
  auto replies = collect_responses(
      sim, client, {"PUT a 1", "GET a", "DEL a", "GET a"});
  EXPECT_EQ(replies,
            (std::vector<std::string>{"OK", "VALUE 1", "OK", "NOTFOUND"}));
  EXPECT_EQ(client.stats().completed, 4u);
}

TEST(LiveS1Test, SurvivesObfuscationBoundaries) {
  sim::Simulator sim;
  LiveConfig cfg = test_config(osl::ObfuscationPolicy::Rerandomize);
  cfg.step_duration = 50.0;  // several reboots during the workload
  LiveS1 system(sim, cfg, kv_factory());
  system.start();
  Client client(sim, system.network(), system.registry(), system.directory(),
                ClientConfig{"client"});
  auto before = collect_responses(sim, client, {"PUT a 1", "PUT b 2"}, 120.0);
  EXPECT_EQ(before, (std::vector<std::string>{"OK", "OK"}));
  // Cross several re-randomization boundaries, then read the state back.
  sim.run_until(sim.now() + 3.5 * cfg.step_duration);
  EXPECT_GE(system.steps_completed(), 3u);
  auto after = collect_responses(sim, client, {"GET a", "GET b"}, 120.0);
  EXPECT_EQ(after, (std::vector<std::string>{"VALUE 1", "VALUE 2"}));
}

TEST(LiveS1Test, CompromisePredicateIsAnyServer) {
  sim::Simulator sim;
  LiveS1 system(sim, test_config(osl::ObfuscationPolicy::Rerandomize),
                kv_factory());
  system.start();
  EXPECT_FALSE(system.failed());
  // Inject a correct probe at one backup.
  class Probe : public net::Handler {
   public:
    void on_message(const net::Envelope&) override {}
  } attacker;
  system.network().attach("attacker", attacker);
  system.network().send("attacker", system.server_machine(2).address(),
                        osl::encode_probe(system.server_machine(2).key()));
  sim.run_until(sim.now() + 5.0);
  EXPECT_TRUE(system.failed());
  ASSERT_TRUE(system.failure_step().has_value());
  EXPECT_EQ(*system.failure_step(), 0u);
}

TEST(LiveS0Test, EndToEndRequestsWithVoting) {
  sim::Simulator sim;
  LiveS0 system(sim, test_config(osl::ObfuscationPolicy::Rerandomize),
                det_kv_factory());
  system.start();
  Client client(sim, system.network(), system.registry(), system.directory(),
                ClientConfig{"client"});
  auto replies = collect_responses(sim, client, {"PUT a 1", "GET a"}, 120.0);
  EXPECT_EQ(replies, (std::vector<std::string>{"OK", "VALUE 1"}));
}

TEST(LiveS0Test, CompromiseNeedsTwoReplicas) {
  sim::Simulator sim;
  LiveS0 system(sim, test_config(osl::ObfuscationPolicy::Rerandomize),
                det_kv_factory());
  system.start();
  class Probe : public net::Handler {
   public:
    void on_message(const net::Envelope&) override {}
  } attacker;
  system.network().attach("attacker", attacker);

  system.network().send("attacker", system.server_machine(1).address(),
                        osl::encode_probe(system.server_machine(1).key()));
  sim.run_until(sim.now() + 5.0);
  EXPECT_EQ(system.currently_compromised(), 1);
  EXPECT_FALSE(system.failed());  // Definition 1: needs MORE than one

  system.network().send("attacker", system.server_machine(3).address(),
                        osl::encode_probe(system.server_machine(3).key()));
  sim.run_until(sim.now() + 5.0);
  EXPECT_TRUE(system.failed());
}

TEST(LiveS0Test, StaggeredRecoveryKeepsServiceAvailable) {
  sim::Simulator sim;
  LiveConfig cfg = test_config(osl::ObfuscationPolicy::Rerandomize);
  cfg.step_duration = 100.0;
  LiveS0 system(sim, cfg, det_kv_factory());
  system.start();
  Client client(sim, system.network(), system.registry(), system.directory(),
                ClientConfig{"client"});
  // Spread requests across several obfuscation steps; the staggered batches
  // mean at most one replica is mid-state-transfer at a time.
  std::vector<std::string> replies;
  for (int i = 0; i < 6; ++i) {
    auto r = collect_responses(
        sim, client, {"PUT k" + std::to_string(i) + " v"}, 150.0);
    replies.push_back(r[0]);
    sim.run_until(sim.now() + 0.7 * cfg.step_duration);
  }
  for (const auto& r : replies) EXPECT_EQ(r, "OK");
  EXPECT_GE(system.steps_completed(), 3u);
}

TEST(LiveS2Test, EndToEndThroughProxies) {
  sim::Simulator sim;
  LiveS2 system(sim, test_config(osl::ObfuscationPolicy::Rerandomize),
                kv_factory());
  system.start();
  sim.run_until(5.0);  // proxies dial the servers
  Client client(sim, system.network(), system.registry(), system.directory(),
                ClientConfig{"client"});
  auto replies = collect_responses(sim, client, {"PUT a 1", "GET a"});
  EXPECT_EQ(replies, (std::vector<std::string>{"OK", "VALUE 1"}));
}

TEST(LiveS2Test, DirectoryHidesServerAddresses) {
  sim::Simulator sim;
  LiveS2 system(sim, test_config(osl::ObfuscationPolicy::Rerandomize),
                kv_factory());
  EXPECT_TRUE(system.directory().fortified());
  EXPECT_TRUE(system.directory().server_addrs.empty());
  EXPECT_EQ(system.directory().proxies.size(), 3u);
  EXPECT_EQ(system.directory().server_principals.size(), 3u);
}

TEST(LiveS2Test, CompromisePredicateServerOrAllProxies) {
  sim::Simulator sim;
  LiveS2 system(sim, test_config(osl::ObfuscationPolicy::Rerandomize),
                kv_factory());
  system.start();
  class Probe : public net::Handler {
   public:
    void on_message(const net::Envelope&) override {}
  } attacker;
  system.network().attach("attacker", attacker);

  // Two of three proxies: not compromised yet.
  for (int i = 0; i < 2; ++i) {
    system.network().send("attacker", system.proxy_machine(i).address(),
                          osl::encode_probe(system.proxy_machine(i).key()));
  }
  sim.run_until(sim.now() + 5.0);
  EXPECT_EQ(system.currently_compromised_proxies(), 2);
  EXPECT_FALSE(system.failed());

  // Third proxy: all proxies fallen -> system compromised.
  system.network().send("attacker", system.proxy_machine(2).address(),
                        osl::encode_probe(system.proxy_machine(2).key()));
  sim.run_until(sim.now() + 5.0);
  EXPECT_TRUE(system.failed());
}

TEST(LiveS2Test, ServerCompromiseAloneFailsSystem) {
  sim::Simulator sim;
  LiveS2 system(sim, test_config(osl::ObfuscationPolicy::Rerandomize),
                kv_factory());
  system.start();
  class Probe : public net::Handler {
   public:
    void on_message(const net::Envelope&) override {}
  } attacker;
  system.network().attach("attacker", attacker);
  system.network().send("attacker", system.server_machine(0).address(),
                        osl::encode_probe(system.server_machine(0).key()));
  sim.run_until(sim.now() + 5.0);
  EXPECT_TRUE(system.failed());
}

TEST(LiveS2Test, ProxyCompromiseCleansedByRerandomization) {
  sim::Simulator sim;
  LiveConfig cfg = test_config(osl::ObfuscationPolicy::Rerandomize);
  cfg.step_duration = 50.0;
  LiveS2 system(sim, cfg, kv_factory());
  system.start();
  class Probe : public net::Handler {
   public:
    void on_message(const net::Envelope&) override {}
  } attacker;
  system.network().attach("attacker", attacker);
  system.network().send("attacker", system.proxy_machine(0).address(),
                        osl::encode_probe(system.proxy_machine(0).key()));
  sim.run_until(sim.now() + 5.0);
  ASSERT_TRUE(system.proxy_machine(0).compromised());
  sim.run_until(60.0);  // past the step boundary
  EXPECT_FALSE(system.proxy_machine(0).compromised());
  EXPECT_FALSE(system.failed());
}

TEST(LiveS2Test, SharedServerKeyDistinctProxyKeys) {
  sim::Simulator sim;
  LiveS2 system(sim, test_config(osl::ObfuscationPolicy::Rerandomize),
                kv_factory());
  system.start();
  EXPECT_EQ(system.server_machine(0).key(), system.server_machine(1).key());
  EXPECT_EQ(system.server_machine(1).key(), system.server_machine(2).key());
  std::set<osl::RandKey> keys;
  for (int i = 0; i < 3; ++i) keys.insert(system.proxy_machine(i).key());
  keys.insert(system.server_machine(0).key());
  EXPECT_EQ(keys.size(), 4u);  // np + 1 distinct keys (§3)
}

TEST(NameServerTest, ServesSignedDirectory) {
  sim::Simulator sim;
  LiveS2 system(sim, test_config(osl::ObfuscationPolicy::Rerandomize),
                kv_factory());
  system.start();

  class Lookup : public net::Handler {
   public:
    void on_message(const net::Envelope& env) override {
      auto msg = replication::Message::decode(env.payload);
      if (msg && msg->type == replication::MsgType::NsReply) reply = *msg;
    }
    std::optional<replication::Message> reply;
  } lookup;
  system.network().attach("prospective-client", lookup);

  replication::Message req;
  req.type = replication::MsgType::NsLookup;
  system.network().send("prospective-client", kNameServerAddress,
                        req.encode());
  sim.run_until(sim.now() + 5.0);

  ASSERT_TRUE(lookup.reply.has_value());
  EXPECT_TRUE(replication::verify_message(*lookup.reply, system.registry()));
  auto dir = Directory::decode(lookup.reply->aux);
  ASSERT_TRUE(dir.has_value());
  EXPECT_EQ(*dir, system.directory());
}

}  // namespace
}  // namespace fortress::core
