// Corpus fixture regression suite: every committed scenarios/*.json must
// decode strictly, re-encode byte-identically, match its pinned semantic
// digest, and reproduce its golden campaign aggregates bit-for-bit. This is
// the in-binary twin of the `fortress_corpus_check` ctest lane (which runs
// `plan_tool check` via tools/corpus_check.py) — the duplication is
// deliberate: the lane survives test-binary refactors, this suite gives
// gtest-grade diagnostics per entry.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/campaign.hpp"
#include "scenario/corpus.hpp"
#include "scenario/plan_codec.hpp"

#ifndef FORTRESS_SCENARIO_DIR
#error "build defines FORTRESS_SCENARIO_DIR (see CMakeLists.txt)"
#endif

namespace fortress::scenario {
namespace {

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& e :
       std::filesystem::directory_iterator(FORTRESS_SCENARIO_DIR)) {
    if (e.path().extension() == ".json") files.push_back(e.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

// The corpus is a committed fixture set: losing a member silently would
// disarm the regression gate, so the roster itself is pinned.
TEST(ScenarioCorpusTest, RosterIsComplete) {
  std::set<std::string> names;
  for (const auto& path : corpus_files()) names.insert(path.stem().string());
  for (const char* required :
       {"partition_quorum_loss", "partition_proxy_islands", "outage_waves",
        "heavy_tail_latency", "diurnal_churn"}) {
    EXPECT_TRUE(names.count(required)) << "missing corpus entry " << required;
  }
}

TEST(ScenarioCorpusTest, EveryEntryIsSound) {
  const auto files = corpus_files();
  ASSERT_FALSE(files.empty()) << "no corpus under " FORTRESS_SCENARIO_DIR;
  for (const auto& path : files) {
    SCOPED_TRACE(path.filename().string());
    const std::string text = slurp(path);
    CorpusEntry entry;
    ASSERT_NO_THROW(entry = corpus_entry_from_json(text));
    // File stem, wrapper name and plan name agree.
    EXPECT_EQ(entry.name, path.stem().string());
    EXPECT_EQ(entry.name, entry.plan.name);
    // check_corpus_entry covers all three pins: semantic digest, canonical
    // byte form, and the golden campaign rows (re-run bit-for-bit).
    for (const std::string& problem : check_corpus_entry(entry, text)) {
      ADD_FAILURE() << problem;
    }
  }
}

// The golden rows must hold under the campaign determinism contract, not
// just under the capture configuration: re-run each entry's campaign with
// the OPPOSITE isolation mode and multiple threads and demand the exact
// same aggregates the (1-thread, pooled) capture pinned.
TEST(ScenarioCorpusTest, GoldenRowsHoldUnderAlternateExecution) {
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    const CorpusEntry entry = corpus_entry_from_json(slurp(path));
    ASSERT_EQ(entry.golden.size(), entry.systems.size());

    std::vector<CampaignCell> cells;
    for (model::SystemKind s : entry.systems) cells.push_back({s, entry.plan});
    CampaignConfig cfg;
    cfg.trials_per_cell = entry.trials_per_cell;
    cfg.base_seed = entry.base_seed;
    cfg.threads = 4;
    cfg.reuse_trial_stacks = false;
    const CampaignResult result = run_campaign(cells, cfg);

    for (std::size_t i = 0; i < entry.golden.size(); ++i) {
      SCOPED_TRACE("cell " + model::to_string(entry.systems[i]));
      const CorpusGoldenCell& want = entry.golden[i];
      const CellStats& got = result.cells[i];
      EXPECT_EQ(got.trials, want.trials);
      EXPECT_EQ(got.compromised, want.compromised);
      EXPECT_EQ(got.censored, want.censored);
      std::uint64_t mean_bits = 0;
      const double mean = got.mean_lifetime();
      static_assert(sizeof mean == sizeof mean_bits);
      std::memcpy(&mean_bits, &mean, sizeof mean_bits);
      EXPECT_EQ(mean_bits, want.lifetime_mean_bits);
      EXPECT_EQ(got.attacker.direct_probes, want.direct_probes);
      EXPECT_EQ(got.attacker.indirect_probes, want.indirect_probes);
      EXPECT_EQ(got.events_executed, want.events_executed);
      EXPECT_EQ(got.blacklisted_sources, want.blacklisted_sources);
      EXPECT_EQ(got.traffic.latency.fingerprint(), want.traffic_fingerprint);
      EXPECT_EQ(got.population.latency.fingerprint(),
                want.population_fingerprint);
    }
  }
}

// Re-encoding an entry through the corpus codec is a fixed point: the
// committed byte form IS the canonical form (no normalization on commit).
TEST(ScenarioCorpusTest, CommittedFilesAreCanonicalFixedPoints) {
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    const std::string text = slurp(path);
    const CorpusEntry entry = corpus_entry_from_json(text);
    EXPECT_EQ(corpus_entry_to_json(entry), text);
    EXPECT_EQ(plan_digest_string(entry.plan), entry.digest);
  }
}

}  // namespace
}  // namespace fortress::scenario
