#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <array>
#include <vector>

#include "common/check.hpp"

namespace fortress::sim {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(SimulatorTest, TiesFireInInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  double fired_at = -1;
  sim.schedule_at(10.0, [&] {
    sim.schedule_after(5.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(SimulatorTest, SchedulingInPastViolatesContract) {
  Simulator sim;
  sim.schedule_at(10.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5.0, [] {}), ContractViolation);
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}), ContractViolation);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  EventId id = sim.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel reports failure
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, CancelAfterExecutionReturnsFalse) {
  Simulator sim;
  EventId id = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  std::uint64_t n = sim.run_until(2.5);
  EXPECT_EQ(n, 2u);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  // Events at exactly the boundary execute.
  n = sim.run_until(3.0);
  EXPECT_EQ(n, 1u);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  sim.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(SimulatorTest, RunUntilAdvancesTimeWhenIdle) {
  Simulator sim;
  sim.run_until(100.0);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(SimulatorTest, StepExecutesOneEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, RequestStopBreaksRun) {
  Simulator sim;
  int count = 0;
  for (double t = 1.0; t <= 10.0; t += 1.0) {
    sim.schedule_at(t, [&] {
      ++count;
      if (count == 3) sim.request_stop();
    });
  }
  sim.run();
  EXPECT_EQ(count, 3);
  // Remaining events still pending; a fresh run completes them.
  sim.run();
  EXPECT_EQ(count, 10);
}

TEST(SimulatorTest, HandlersCanScheduleRecursively) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 50) sim.schedule_after(1.0, recurse);
  };
  sim.schedule_after(1.0, recurse);
  sim.run();
  EXPECT_EQ(depth, 50);
  EXPECT_DOUBLE_EQ(sim.now(), 50.0);
}

TEST(SimulatorTest, CancelledIdNotConfusedWithSlotReuse) {
  // The slab recycles event slots; a stale EventId whose slot was reused
  // must neither cancel the new occupant nor report success (generation
  // check, ABA guard).
  Simulator sim;
  bool first_ran = false;
  bool second_ran = false;
  EventId first = sim.schedule_at(1.0, [&] { first_ran = true; });
  EXPECT_TRUE(sim.cancel(first));
  // This reuses the freed slot.
  EventId second = sim.schedule_at(2.0, [&] { second_ran = true; });
  EXPECT_FALSE(sim.cancel(first));  // stale id: must not touch the new event
  sim.run();
  EXPECT_FALSE(first_ran);
  EXPECT_TRUE(second_ran);
  EXPECT_FALSE(sim.cancel(second));
}

TEST(SimulatorTest, CancelFromWithinHandler) {
  Simulator sim;
  bool victim_ran = false;
  EventId victim = sim.schedule_at(2.0, [&] { victim_ran = true; });
  sim.schedule_at(1.0, [&] { EXPECT_TRUE(sim.cancel(victim)); });
  sim.run();
  EXPECT_FALSE(victim_ran);
}

TEST(SimulatorTest, CancelledEventsNeverFireAcrossRunModes) {
  // Cancelled events must not fire whether drained by run(), run_until() or
  // step(), including tombstones popped long after cancellation.
  Simulator sim;
  int fired = 0;
  std::vector<EventId> ids;
  for (int i = 0; i < 20; ++i) {
    ids.push_back(sim.schedule_at(1.0 + i, [&] { ++fired; }));
  }
  for (int i = 0; i < 20; i += 2) EXPECT_TRUE(sim.cancel(ids[static_cast<std::size_t>(i)]));
  EXPECT_EQ(sim.pending(), 10u);
  sim.run_until(6.0);   // fires 1.0..6.0 odd-indexed events
  while (sim.step()) {  // drain the rest one by one
  }
  EXPECT_EQ(fired, 10);
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorTest, PendingExcludesCancelledTombstones) {
  Simulator sim;
  EventId a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_FALSE(sim.idle());
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorTest, LargeCaptureFallsBackToHeapCorrectly) {
  // Captures larger than EventFn's inline buffer take the heap path; the
  // callable must still move, fire once, and destruct exactly once.
  Simulator sim;
  std::vector<int> big(1000, 7);
  std::array<char, 200> pad{};  // bigger than any inline buffer
  long sum = 0;
  sim.schedule_at(1.0, [big, pad, &sum] {
    sum += big[999] + pad[0];
  });
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(sum, 7);
}

TEST(SimulatorTest, HighChurnReusesSlotsDeterministically) {
  // Interleaved schedule/cancel/run churn across many slots: order and
  // counts must stay exact while the free list recycles aggressively.
  Simulator sim;
  std::vector<double> fired;
  for (int round = 0; round < 50; ++round) {
    std::vector<EventId> ids;
    double base = sim.now();
    for (int i = 0; i < 8; ++i) {
      double at = base + 1.0 + i;
      ids.push_back(sim.schedule_at(at, [&fired, &sim] { fired.push_back(sim.now()); }));
    }
    for (int i = 1; i < 8; i += 2) sim.cancel(ids[static_cast<std::size_t>(i)]);
    sim.run_until(base + 10.0);
  }
  EXPECT_EQ(fired.size(), 50u * 4u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  EXPECT_TRUE(sim.idle());
}

TEST(TimerWheelTest, CancelAfterCascade) {
  // Two timers share a level-1 bucket; when the cursor reaches that bucket
  // both cascade into level-0 slots. The earlier one then cancels the later
  // one AFTER the cascade relocated it — the unlink must find it in its
  // post-cascade bucket.
  Simulator sim(SchedulerKind::Wheel);
  bool victim_ran = false;
  // Ticks 2050 and 2049 (kTicksPerUnit = 1024): same level-1 slot, distinct
  // level-0 slots after the cascade at tick 2048.
  EventId victim = sim.schedule_at(2050.0 / 1024.0, [&] { victim_ran = true; });
  sim.schedule_at(2049.0 / 1024.0, [&] { EXPECT_TRUE(sim.cancel(victim)); });
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_FALSE(victim_ran);
  EXPECT_TRUE(sim.idle());
}

TEST(TimerWheelTest, CancelWhileStagedInDueQueue) {
  // Two timers on the SAME tick share a level-0 bucket and get staged into
  // the due queue together; cancelling the second from the first must
  // tombstone the staged entry, not unlink a bucket.
  Simulator sim(SchedulerKind::Wheel);
  bool victim_ran = false;
  EventId victim = 0;
  sim.schedule_at(2049.0 / 1024.0, [&] { EXPECT_TRUE(sim.cancel(victim)); });
  victim = sim.schedule_at(2049.0 / 1024.0, [&] { victim_ran = true; });
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_FALSE(victim_ran);
  EXPECT_TRUE(sim.idle());
}

TEST(TimerWheelTest, ScheduleAtExactWheelHorizon) {
  // The wheel spans 64^8 ticks; a timer at exactly now + horizon has its
  // top level bit beyond the last level and must take the overflow path —
  // and still fire, in order, after a timer just inside the horizon.
  Simulator sim(SchedulerKind::Wheel);
  const double horizon_units = std::ldexp(1.0, 38);  // 2^48 ticks / 2^10
  std::vector<int> order;
  sim.schedule_at(horizon_units, [&] { order.push_back(2); });
  sim.schedule_at(horizon_units / 2.0, [&] { order.push_back(1); });
  EventId cancelled = sim.schedule_at(horizon_units, [&] { order.push_back(3); });
  EXPECT_TRUE(sim.cancel(cancelled));
  EXPECT_EQ(sim.pending(), 2u);
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(sim.now(), horizon_units);
}

TEST(TimerWheelTest, ZeroDelayScheduleAfterRunsSameTickFifo) {
  // schedule_after(0) from inside a handler lands at a tick <= cursor and
  // must run within the same simulator tick, in submission order, after
  // the scheduling handler returns.
  Simulator sim(SchedulerKind::Wheel);
  std::vector<int> order;
  sim.schedule_at(1.0, [&] {
    order.push_back(0);
    sim.schedule_after(0.0, [&] { order.push_back(1); });
    sim.schedule_after(0.0, [&] {
      order.push_back(2);
      sim.schedule_after(0.0, [&] { order.push_back(4); });
    });
    sim.schedule_after(0.0, [&] { order.push_back(3); });
  });
  EXPECT_EQ(sim.run(), 5u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
}

TEST(TimerWheelTest, EventIdGenerationSurvivesReset) {
  // reset() bumps the generation of every live slot; an EventId captured
  // before the reset must not cancel the slot's next occupant.
  Simulator sim(SchedulerKind::Wheel);
  EventId before = sim.schedule_at(1.0, [] {});
  sim.reset();
  EXPECT_TRUE(sim.idle());
  bool ran = false;
  EventId after = sim.schedule_at(1.0, [&] { ran = true; });
  EXPECT_NE(before, after);
  EXPECT_FALSE(sim.cancel(before));
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_TRUE(ran);
}

TEST(TimerWheelTest, ResetRestoresEpoch) {
  // After running deep into simulated time the cursor sits far from zero;
  // reset() must restore the epoch so early timers fire correctly again.
  Simulator sim(SchedulerKind::Wheel);
  sim.schedule_at(5000.0, [] {});
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_DOUBLE_EQ(sim.now(), 5000.0);
  sim.reset();
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  double fired_at = -1.0;
  sim.schedule_at(0.5, [&] { fired_at = sim.now(); });
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_DOUBLE_EQ(fired_at, 0.5);
}

namespace {

/// A deterministic mixed-delay workload; returns an order-sensitive digest
/// of the execution trajectory (time and identity of every firing).
std::uint64_t run_trajectory(Simulator& sim) {
  std::uint64_t digest = 14695981039346656037ull;
  auto absorb = [&digest](std::uint64_t v) {
    digest = (digest ^ v) * 1099511628211ull;
  };
  std::vector<EventId> ids;
  for (int i = 0; i < 200; ++i) {
    const double at = 0.25 * (i % 7 + 1) + 3.0 * i;
    ids.push_back(sim.schedule_at(at, [&absorb, i, &sim] {
      absorb(static_cast<std::uint64_t>(i));
      absorb(static_cast<std::uint64_t>(sim.now() * 1024.0));
      if (i % 5 == 0) {
        sim.schedule_after(0.125 * (i % 3 + 1),
                           [&absorb] { absorb(0xABCDu); });
      }
    }));
  }
  for (int i = 0; i < 200; i += 3) {
    sim.cancel(ids[static_cast<std::size_t>(i)]);
  }
  absorb(sim.run());
  return digest;
}

}  // namespace

TEST(TimerWheelTest, AlternatingSchedulerResetsInOneSimulator) {
  // One pooled simulator alternating wheel and heap across resets must
  // reproduce each fresh simulator's trajectory exactly — the regression
  // for arenas whose campaign config flips scheduler kind between runs.
  Simulator fresh_wheel(SchedulerKind::Wheel);
  Simulator fresh_heap(SchedulerKind::Heap);
  const std::uint64_t wheel_digest = run_trajectory(fresh_wheel);
  const std::uint64_t heap_digest = run_trajectory(fresh_heap);
  EXPECT_EQ(wheel_digest, heap_digest);

  Simulator pooled(SchedulerKind::Wheel);
  EXPECT_EQ(run_trajectory(pooled), wheel_digest);
  pooled.reset(SchedulerKind::Heap);
  EXPECT_EQ(run_trajectory(pooled), heap_digest);
  pooled.reset(SchedulerKind::Wheel);
  EXPECT_EQ(run_trajectory(pooled), wheel_digest);
  pooled.reset();  // kind-preserving reset stays on the wheel
  EXPECT_EQ(pooled.scheduler_kind(), SchedulerKind::Wheel);
  EXPECT_EQ(run_trajectory(pooled), wheel_digest);
}

TEST(PeriodicTimerTest, FiresEveryPeriod) {
  Simulator sim;
  std::vector<double> fires;
  PeriodicTimer timer(sim, 10.0, [&] { fires.push_back(sim.now()); });
  timer.start();
  sim.run_until(35.0);
  EXPECT_EQ(fires, (std::vector<double>{10.0, 20.0, 30.0}));
}

TEST(PeriodicTimerTest, StartAfterCustomDelay) {
  Simulator sim;
  std::vector<double> fires;
  PeriodicTimer timer(sim, 10.0, [&] { fires.push_back(sim.now()); });
  timer.start_after(3.0);
  sim.run_until(25.0);
  EXPECT_EQ(fires, (std::vector<double>{3.0, 13.0, 23.0}));
}

TEST(PeriodicTimerTest, StopHaltsFiring) {
  Simulator sim;
  int count = 0;
  PeriodicTimer timer(sim, 1.0, [&] { ++count; });
  timer.start();
  sim.run_until(5.5);
  timer.stop();
  sim.run_until(20.0);
  EXPECT_EQ(count, 5);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimerTest, StopFromWithinCallback) {
  Simulator sim;
  int count = 0;
  PeriodicTimer timer(sim, 1.0, [&] {
    if (++count == 3) timer.stop();
  });
  timer.start();
  sim.run_until(100.0);
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTimerTest, ZeroPeriodViolatesContract) {
  Simulator sim;
  EXPECT_THROW(PeriodicTimer(sim, 0.0, [] {}), ContractViolation);
}

}  // namespace
}  // namespace fortress::sim
