// The standing differential fuzz guard. Each random plan's campaign is run
// four ways — reference (1 thread, pooled arenas, wheel scheduler) against
// fresh-stacks, 8-thread and heap-scheduler arms — and every aggregate must
// be bit-identical (campaign_fingerprint covers lifetime moments, attacker
// counters, traffic/population stats and both latency-histogram
// fingerprints). Each plan also round-trips through the codec first, so the
// fuzzer exercises parser and simulator together.
//
// Budget: FORTRESS_PLANFUZZ_PLANS (default 8 here, so a plain
// fortress_tests run stays fast). The fortress_tests_planfuzz ctest lane
// re-runs this suite at the CI budget of 64 plans.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "scenario/differential.hpp"
#include "scenario/plan_codec.hpp"
#include "scenario/plan_generator.hpp"

namespace fortress::scenario {
namespace {

int fuzz_budget() {
  if (const char* env = std::getenv("FORTRESS_PLANFUZZ_PLANS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 8;
}

TEST(PlanFuzzTest, RandomPlansAreDeterministicAcrossExecutionModes) {
  PlanGenerator gen(0xF0221);
  const int budget = fuzz_budget();
  for (int i = 0; i < budget; ++i) {
    const net::ScenarioPlan original = gen.next();
    SCOPED_TRACE(original.name);

    // Codec round-trip first: the plan under differential test is the
    // DECODED one, so a codec bug that perturbs a field shows up as either
    // a byte diff here or a fingerprint diff below.
    const std::string encoded = plan_to_json(original);
    const net::ScenarioPlan plan = plan_from_json(encoded);
    ASSERT_EQ(plan_to_json(plan), encoded);

    for (const std::string& divergence : differential_check(plan)) {
      ADD_FAILURE() << divergence << "\nrepro plan:\n" << encoded;
    }
  }
}

// The generator itself is part of the guard's trust base: same seed, same
// plans, forever — otherwise a fuzz failure in CI is not reproducible
// locally.
TEST(PlanFuzzTest, GeneratorIsDeterministicInSeedAndIndex) {
  PlanGenerator a(42), b(42);
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(plan_to_json_compact(a.next()), plan_to_json_compact(b.next()));
  }
  // Streams are index-addressed, not state-chained: a generator that
  // already emitted plans continues to agree with a fresh one.
  PlanGenerator c(42);
  for (int i = 0; i < 16; ++i) c.next();
  EXPECT_EQ(plan_to_json_compact(a.next()), plan_to_json_compact(c.next()));
  // Different seeds give different streams.
  PlanGenerator d(43);
  EXPECT_NE(plan_to_json_compact(PlanGenerator(42).next()),
            plan_to_json_compact(d.next()));
}

TEST(PlanFuzzTest, GeneratorCoversEveryOptionalPlane) {
  // 64 plans at the default opt-in weights make a never-sampled plane
  // astronomically unlikely; this catches a generator regression that
  // silently stops exercising an axis.
  PlanGenerator gen(7);
  bool saw_partitions = false, saw_faults = false, saw_service = false,
       saw_traffic = false, saw_population = false, saw_crash = false,
       saw_zero_rate = false, saw_past_horizon = false;
  for (int i = 0; i < 64; ++i) {
    const net::ScenarioPlan p = gen.next();
    saw_partitions |= !p.partitions.empty();
    saw_service |= p.service.enabled;
    saw_traffic |= p.traffic.enabled();
    saw_population |= p.population.enabled();
    for (const net::FaultEvent& f : p.faults) {
      saw_faults = true;
      saw_crash |= f.kind == net::FaultEvent::Kind::Crash;
      saw_past_horizon |=
          f.at >= p.step_duration * static_cast<double>(p.horizon_steps);
    }
    for (const net::RatePhase& phase : p.traffic.schedule) {
      saw_zero_rate |= phase.rate == 0.0;
    }
  }
  EXPECT_TRUE(saw_partitions);
  EXPECT_TRUE(saw_faults);
  EXPECT_TRUE(saw_service);
  EXPECT_TRUE(saw_traffic);
  EXPECT_TRUE(saw_population);
  EXPECT_TRUE(saw_crash);
  EXPECT_TRUE(saw_zero_rate);
  EXPECT_TRUE(saw_past_horizon);
}

}  // namespace
}  // namespace fortress::scenario
