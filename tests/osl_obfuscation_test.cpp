#include "osl/obfuscation.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/check.hpp"
#include "net/network.hpp"

namespace fortress::osl {
namespace {

class ObfuscationTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kChi = 1 << 10;

  ObfuscationTest()
      : net_(sim_, std::make_unique<net::FixedLatency>(0.1)) {
    for (int i = 0; i < 3; ++i) {
      proxies_.push_back(std::make_unique<Machine>(
          net_, MachineConfig{"proxy-" + std::to_string(i), kChi}));
      servers_.push_back(std::make_unique<Machine>(
          net_, MachineConfig{"server-" + std::to_string(i), kChi}));
    }
  }

  ObfuscationConfig config(ObfuscationPolicy policy, std::uint32_t period = 1) {
    ObfuscationConfig cfg;
    cfg.step_duration = 10.0;
    cfg.policy = policy;
    cfg.keyspace = kChi;
    cfg.period = period;
    return cfg;
  }

  void register_all(ObfuscationScheduler& sched) {
    for (auto& p : proxies_) sched.add_machine(*p);
    std::vector<Machine*> group;
    for (auto& s : servers_) group.push_back(s.get());
    sched.add_shared_group(std::move(group));
  }

  sim::Simulator sim_;
  net::Network net_;
  std::vector<std::unique_ptr<Machine>> proxies_;
  std::vector<std::unique_ptr<Machine>> servers_;
};

TEST_F(ObfuscationTest, BootAssignsDistinctKeysWithSharedGroup) {
  ObfuscationScheduler sched(sim_, config(ObfuscationPolicy::Rerandomize));
  register_all(sched);
  sched.boot_all();

  // Servers share one key.
  EXPECT_EQ(servers_[0]->key(), servers_[1]->key());
  EXPECT_EQ(servers_[1]->key(), servers_[2]->key());

  // Proxies' keys are distinct from each other and from the server key.
  std::set<RandKey> keys;
  for (auto& p : proxies_) keys.insert(p->key());
  keys.insert(servers_[0]->key());
  EXPECT_EQ(keys.size(), 4u);  // np + 1 keys in use (paper §3)

  for (auto& p : proxies_) EXPECT_TRUE(p->booted());
  for (auto& s : servers_) EXPECT_TRUE(s->booted());
}

TEST_F(ObfuscationTest, RerandomizeChangesKeysEachStep) {
  ObfuscationScheduler sched(sim_, config(ObfuscationPolicy::Rerandomize));
  register_all(sched);
  sched.boot_all();
  sched.start();

  RandKey server_key_0 = servers_[0]->key();
  sim_.run_until(10.0);  // one step boundary
  EXPECT_EQ(sched.steps_completed(), 1u);
  // With chi = 1024, a same-key redraw has probability ~1/1024; seeds are
  // fixed so this is deterministic and chosen to differ.
  EXPECT_NE(servers_[0]->key(), server_key_0);
  EXPECT_EQ(servers_[0]->key(), servers_[1]->key());  // group stays shared
}

TEST_F(ObfuscationTest, RecoverKeepsKeys) {
  ObfuscationScheduler sched(sim_, config(ObfuscationPolicy::Recover));
  register_all(sched);
  sched.boot_all();
  sched.start();

  std::vector<RandKey> before;
  for (auto& p : proxies_) before.push_back(p->key());
  RandKey server_before = servers_[0]->key();

  sim_.run_until(50.0);  // five steps
  EXPECT_EQ(sched.steps_completed(), 5u);
  for (std::size_t i = 0; i < proxies_.size(); ++i) {
    EXPECT_EQ(proxies_[i]->key(), before[i]);
  }
  EXPECT_EQ(servers_[0]->key(), server_before);
}

TEST_F(ObfuscationTest, StepBoundaryCleansesCompromise) {
  ObfuscationScheduler sched(sim_, config(ObfuscationPolicy::Rerandomize));
  register_all(sched);
  sched.boot_all();
  sched.start();

  // Compromise a proxy by direct key injection (simulating a hit).
  class Dummy : public net::Handler {
   public:
    void on_message(const net::Envelope&) override {}
  } attacker;
  net_.attach("attacker", attacker);
  net_.send("attacker", proxies_[0]->address(), encode_probe(proxies_[0]->key()));
  sim_.run_until(5.0);
  ASSERT_TRUE(proxies_[0]->compromised());

  sim_.run_until(10.0);  // boundary
  EXPECT_FALSE(proxies_[0]->compromised());
}

TEST_F(ObfuscationTest, PeriodDelaysRerandomization) {
  ObfuscationScheduler sched(sim_,
                             config(ObfuscationPolicy::Rerandomize, 3));
  register_all(sched);
  sched.boot_all();
  sched.start();

  RandKey initial = servers_[0]->key();
  sim_.run_until(10.0);  // step 1: recovery only
  EXPECT_EQ(servers_[0]->key(), initial);
  sim_.run_until(20.0);  // step 2: recovery only
  EXPECT_EQ(servers_[0]->key(), initial);
  sim_.run_until(30.0);  // step 3: re-randomization boundary
  EXPECT_NE(servers_[0]->key(), initial);
}

TEST_F(ObfuscationTest, OnStepCallbackCountsSteps) {
  ObfuscationScheduler sched(sim_, config(ObfuscationPolicy::Recover));
  register_all(sched);
  sched.boot_all();
  std::uint64_t last_step = 0;
  sched.on_step = [&](std::uint64_t s) { last_step = s; };
  sched.start();
  sim_.run_until(35.0);
  EXPECT_EQ(last_step, 3u);
}

TEST_F(ObfuscationTest, StopHaltsStepping) {
  ObfuscationScheduler sched(sim_, config(ObfuscationPolicy::Recover));
  register_all(sched);
  sched.boot_all();
  sched.start();
  sim_.run_until(20.0);
  sched.stop();
  sim_.run_until(100.0);
  EXPECT_EQ(sched.steps_completed(), 2u);
}

TEST_F(ObfuscationTest, RegistrationAfterBootViolatesContract) {
  ObfuscationScheduler sched(sim_, config(ObfuscationPolicy::Recover));
  register_all(sched);
  sched.boot_all();
  Machine extra(net_, MachineConfig{"extra", kChi});
  EXPECT_THROW(sched.add_machine(extra), ContractViolation);
}

TEST_F(ObfuscationTest, StartBeforeBootViolatesContract) {
  ObfuscationScheduler sched(sim_, config(ObfuscationPolicy::Recover));
  register_all(sched);
  EXPECT_THROW(sched.start(), ContractViolation);
}

TEST_F(ObfuscationTest, BootWithNothingRegisteredViolatesContract) {
  ObfuscationScheduler sched(sim_, config(ObfuscationPolicy::Recover));
  EXPECT_THROW(sched.boot_all(), ContractViolation);
}

}  // namespace
}  // namespace fortress::osl
