#include "core/directory.hpp"

#include <gtest/gtest.h>

namespace fortress::core {
namespace {

Directory sample() {
  Directory d;
  d.replication = ReplicationType::StateMachine;
  d.f = 1;
  d.proxies = {"proxy-0", "proxy-1"};
  d.server_principals = {"server-0", "server-1", "server-2"};
  d.server_addrs = {};
  return d;
}

TEST(DirectoryTest, EncodeDecodeRoundTrip) {
  Directory d = sample();
  auto decoded = Directory::decode(d.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, d);
}

TEST(DirectoryTest, EmptyListsRoundTrip) {
  Directory d;
  auto decoded = Directory::decode(d.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, d);
}

TEST(DirectoryTest, FortifiedPredicate) {
  Directory d = sample();
  EXPECT_TRUE(d.fortified());
  d.proxies.clear();
  EXPECT_FALSE(d.fortified());
}

TEST(DirectoryTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(Directory::decode(bytes_of("nope")).has_value());
  EXPECT_FALSE(Directory::decode(Bytes{}).has_value());
}

TEST(DirectoryTest, DecodeRejectsTruncation) {
  Bytes wire = sample().encode();
  for (std::size_t cut = 1; cut < wire.size(); cut += 7) {
    EXPECT_FALSE(Directory::decode(BytesView(wire.data(), cut)).has_value());
  }
}

TEST(DirectoryTest, DecodeRejectsTrailingBytes) {
  Bytes wire = sample().encode();
  wire.push_back(1);
  EXPECT_FALSE(Directory::decode(wire).has_value());
}

}  // namespace
}  // namespace fortress::core
