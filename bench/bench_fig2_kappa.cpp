// bench_fig2_kappa — reproduces Figure 2: "Expected Lifetimes of the S2PO
// Systems as κ varies (logarithmic scale)".
//
// For each α we sweep κ from 0 to 1 and report the S2PO EL (closed form,
// period 1). The two §6 observations tied to this figure are checked:
//   * S2PO outlives S1PO whenever κ <= 0.9 (Trend 3);
//   * S0PO outlives S2PO except when κ = 0 (Trend 4).
// We additionally report the exact κ* crossover for each α (bisection) and
// the probe-granular Monte-Carlo EL for the largest α as a model check.
#include <cstdio>

#include "analysis/markov.hpp"
#include "bench_util.hpp"
#include "model/step_model.hpp"

using namespace fortress;
using namespace fortress::bench;

int main() {
  const std::vector<double> alphas = {1e-4, 1e-3, 1e-2};
  const std::vector<double> kappas = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5,
                                      0.6, 0.7, 0.8, 0.9, 1.0};

  std::printf("Figure 2 reproduction: S2PO expected lifetime vs kappa "
              "(chi = 2^16)\n\n");
  std::printf("%8s", "kappa");
  for (double a : alphas) std::printf("  %14s", ("alpha=" + std::to_string(a)).c_str());
  std::printf("\n");
  rule(8 + 16 * static_cast<int>(alphas.size()));

  for (double kappa : kappas) {
    std::printf("%8.2f", kappa);
    for (double alpha : alphas) {
      model::AttackParams p;
      p.alpha = alpha;
      p.kappa = kappa;
      p.chi = 1ull << 16;
      double el = model::expected_lifetime_po(model::SystemShape::s2(), p);
      std::printf("  %14.5g", el);
    }
    std::printf("\n");
  }
  rule(8 + 16 * static_cast<int>(alphas.size()));

  // Reference lines and trend checks.
  bool trend3 = true;  // S2PO outlives S1PO for kappa <= 0.9
  bool trend4 = true;  // S0PO outlives S2PO except kappa = 0
  std::printf("\n%10s %14s %14s %14s %12s\n", "alpha", "S1PO", "S0PO",
              "kappa* (S2=S1)", "S2PO@k=0>S0PO");
  rule(72);
  for (double alpha : alphas) {
    model::AttackParams p;
    p.alpha = alpha;
    p.chi = 1ull << 16;
    double s1po = model::expected_lifetime_po(model::SystemShape::s1(), p);
    double s0po = model::expected_lifetime_po(model::SystemShape::s0(), p);
    double kstar = model::s2_vs_s1_kappa_crossover(p);
    for (double kappa : kappas) {
      model::AttackParams pk = p;
      pk.kappa = kappa;
      double s2 = model::expected_lifetime_po(model::SystemShape::s2(), pk);
      if (kappa <= 0.9 && s2 <= s1po) trend3 = false;
      if (kappa > 0.0 && s2 >= s0po) trend4 = false;
    }
    model::AttackParams p0 = p;
    p0.kappa = 0.0;
    double s2_at_zero =
        model::expected_lifetime_po(model::SystemShape::s2(), p0);
    std::printf("%10.0e %14.5g %14.5g %14.4f %12s\n", alpha, s1po, s0po,
                kstar, s2_at_zero > s0po ? "yes" : "no");
    if (s2_at_zero <= s0po) trend4 = false;
  }

  // Probe-granular MC check at alpha = 1e-2 (the launch-pad rule costs the
  // attacker part of the step, so probe-mode EL >= step-mode EL).
  std::printf("\nProbe-granularity Monte-Carlo check (alpha=1e-2):\n");
  std::printf("%8s %16s %16s\n", "kappa", "EL step (exact)", "EL probe (MC)");
  rule(44);
  for (double kappa : {0.0, 0.5, 1.0}) {
    model::AttackParams p;
    p.alpha = 1e-2;
    p.kappa = kappa;
    p.chi = 1ull << 16;
    double step_el = model::expected_lifetime_po(model::SystemShape::s2(), p);
    montecarlo::McConfig cfg;
    cfg.trials = 40000;
    cfg.seed = 99;
    cfg.threads = 4;
    cfg.max_steps = 1ull << 32;
    auto mc = montecarlo::estimate_lifetime(
        model::SystemShape::s2(), p, model::Obfuscation::Proactive,
        model::Granularity::Probe, cfg);
    std::printf("%8.2f %16.5g %16.5g\n", kappa, step_el,
                mc.expected_lifetime());
  }

  // Compromise-route attribution (route-split absorbing chain): why the
  // curve has its shape — the indirect route takes over as kappa grows.
  std::printf("\nCompromise-route attribution at alpha = 1e-3 (absorbing "
              "chain):\n");
  std::printf("%8s %12s %12s %12s\n", "kappa", "indirect", "via-proxy",
              "all-proxies");
  rule(48);
  for (double kappa : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    model::AttackParams p;
    p.alpha = 1e-3;
    p.kappa = kappa;
    p.chi = 1ull << 16;
    auto r = analysis::s2_route_probabilities(model::SystemShape::s2(), p);
    auto pct = [](double x) { return x < 0.0 ? 0.0 : 100.0 * x; };
    std::printf("%8.2f %11.2f%% %11.2f%% %11.2f%%\n", kappa,
                pct(r.server_indirect), pct(r.server_via_proxy),
                pct(r.all_proxies));
  }

  std::printf("\nTrend 3 (S2PO -> S1PO when kappa <= 0.9): %s\n", pass(trend3));
  std::printf("Trend 4 (S0PO -> S2PO except kappa = 0):  %s\n", pass(trend4));
  return (trend3 && trend4) ? 0 : 1;
}
