// bench_ablation_chi — key-entropy ablation (E10).
//
// §4.1 fixes χ = 2^16 ("in practice, the randomization key entropy appears
// to be 16 bits or 32 bits"). This ablation sweeps χ from 2^12 to 2^24 at a
// fixed attacker strength expressed as probes-per-step ω, showing how
// entropy drives every system's lifetime: under SO lifetimes scale linearly
// with χ/ω; under PO with 1/α = χ/ω for S1 and quadratically better for the
// multi-hit systems.
#include <cstdio>

#include "bench_util.hpp"

using namespace fortress;
using namespace fortress::bench;

int main() {
  const std::uint64_t omega = 64;  // fixed attacker strength: probes/step
  const double kappa = 0.5;

  std::printf("Key-entropy ablation: fixed omega = %llu probes/step, "
              "kappa = %.2f\n", static_cast<unsigned long long>(omega), kappa);
  std::printf("alpha is derived as omega/chi (Definition 4/6 coupling)\n\n");
  std::printf("%8s %12s %12s %12s %12s %12s %12s\n", "log2chi", "alpha",
              "S0SO", "S1SO", "S1PO", "S2PO", "S0PO");
  rule(88);

  bool monotone = true;
  double prev_s1po = 0.0;
  for (int log2chi = 12; log2chi <= 24; log2chi += 2) {
    std::uint64_t chi = 1ull << log2chi;
    model::AttackParams p;
    p.alpha = static_cast<double>(omega) / static_cast<double>(chi);
    p.kappa = kappa;
    p.chi = chi;

    double s0so = evaluate_el(shape_of(model::SystemKind::S0), p,
                              model::Obfuscation::StartupOnly).el;
    double s1so = evaluate_el(shape_of(model::SystemKind::S1), p,
                              model::Obfuscation::StartupOnly).el;
    double s1po = evaluate_el(shape_of(model::SystemKind::S1), p,
                              model::Obfuscation::Proactive).el;
    double s2po = evaluate_el(shape_of(model::SystemKind::S2), p,
                              model::Obfuscation::Proactive).el;
    double s0po = evaluate_el(shape_of(model::SystemKind::S0), p,
                              model::Obfuscation::Proactive).el;
    std::printf("%8d %12.3g %12.4g %12.4g %12.4g %12.4g %12.4g\n", log2chi,
                p.alpha, s0so, s1so, s1po, s2po, s0po);
    if (s1po < prev_s1po) monotone = false;
    prev_s1po = s1po;
  }
  rule(88);
  std::printf("\nEvery lifetime grows with key entropy:      %s\n",
              pass(monotone));
  std::printf("(The paper's chi = 2^16 sits in the middle of the sweep; the "
              "ordering chain is entropy-independent.)\n");
  return monotone ? 0 : 1;
}
