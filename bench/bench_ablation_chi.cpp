// bench_ablation_chi — key-entropy ablation (E10).
//
// §4.1 fixes χ = 2^16 ("in practice, the randomization key entropy appears
// to be 16 bits or 32 bits"). This ablation sweeps χ from 2^12 to 2^24 at a
// fixed attacker strength expressed as probes-per-step ω, showing how
// entropy drives every system's lifetime: under SO lifetimes scale linearly
// with χ/ω; under PO with 1/α = χ/ω for S1 and quadratically better for the
// multi-hit systems.
#include <cstdio>

#include "bench_util.hpp"

using namespace fortress;
using namespace fortress::bench;

int main() {
  const std::uint64_t omega = 64;  // fixed attacker strength: probes/step
  const double kappa = 0.5;

  std::printf("Key-entropy ablation: fixed omega = %llu probes/step, "
              "kappa = %.2f\n", static_cast<unsigned long long>(omega), kappa);
  std::printf("alpha is derived as omega/chi (Definition 4/6 coupling)\n\n");
  std::printf("%8s %12s %12s %12s %12s %12s %12s\n", "log2chi", "alpha",
              "S0SO", "S1SO", "S1PO", "S2PO", "S0PO");
  rule(88);

  struct Combo {
    model::SystemKind kind;
    model::Obfuscation obf;
  };
  const std::vector<Combo> combos = {
      {model::SystemKind::S0, model::Obfuscation::StartupOnly},
      {model::SystemKind::S1, model::Obfuscation::StartupOnly},
      {model::SystemKind::S1, model::Obfuscation::Proactive},
      {model::SystemKind::S2, model::Obfuscation::Proactive},
      {model::SystemKind::S0, model::Obfuscation::Proactive},
  };
  std::vector<int> log2chis;
  for (int log2chi = 12; log2chi <= 24; log2chi += 2) {
    log2chis.push_back(log2chi);
  }

  // (chi x series) grid over the shared pool; slots keep the table order
  // identical to the sequential sweep.
  std::vector<double> el(log2chis.size() * combos.size(), 0.0);
  parallel_grid(el.size(), [&](std::size_t idx) {
    const std::uint64_t chi = 1ull << log2chis[idx / combos.size()];
    const Combo& c = combos[idx % combos.size()];
    model::AttackParams p;
    p.alpha = static_cast<double>(omega) / static_cast<double>(chi);
    p.kappa = kappa;
    p.chi = chi;
    el[idx] = evaluate_el(shape_of(c.kind), p, c.obf, 200000, 2026,
                          /*mc_threads=*/1).el;
  });

  bool monotone = true;
  double prev_s1po = 0.0;
  for (std::size_t ci = 0; ci < log2chis.size(); ++ci) {
    const double* row = &el[ci * combos.size()];
    const double alpha = static_cast<double>(omega) /
                         static_cast<double>(1ull << log2chis[ci]);
    std::printf("%8d %12.3g %12.4g %12.4g %12.4g %12.4g %12.4g\n",
                log2chis[ci], alpha, row[0], row[1], row[2], row[3], row[4]);
    if (row[2] < prev_s1po) monotone = false;
    prev_s1po = row[2];
  }
  rule(88);
  std::printf("\nEvery lifetime grows with key entropy:      %s\n",
              pass(monotone));
  std::printf("(The paper's chi = 2^16 sits in the middle of the sweep; the "
              "ordering chain is entropy-independent.)\n");
  return monotone ? 0 : 1;
}
