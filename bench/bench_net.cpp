// bench_net — live event-path microbench: what one delivered protocol
// message costs on net::Network, separated from everything above it.
//
// Three sections, all on a 2-host network with zero-latency fixed delay so
// the simulator pop cost is the floor (~21 ns/event, BM_SimulatorEvent):
//
//  * BM_NetworkDatagram        — send() + scheduled delivery + handler
//                                dispatch, per delivered message;
//  * BM_NetworkConnSend        — send_on() over an established connection;
//  * BM_NetworkConnectTeardown — connect() + accept + close() + peer
//                                notification, per full handshake cycle.
//
// Writes BenchRecorder JSON (default BENCH_net.json, argv[1] overrides);
// the `bench_diff` CMake target gates these entries against
// bench/baseline.json like every other hot-path number.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "net/network.hpp"

using namespace fortress;
using namespace fortress::bench;

namespace {

class SinkHandler final : public net::Handler {
 public:
  void on_message(const net::Envelope& env) override {
    bytes_seen += env.payload.size();
  }
  std::size_t bytes_seen = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_net.json";
  BenchRecorder recorder;

  constexpr int kBatch = 10000;
  const Bytes payload(64, 0xAB);

  // --- datagram delivery ----------------------------------------------------
  {
    sim::Simulator sim;
    net::Network net(sim, std::make_unique<net::FixedLatency>(0.0));
    SinkHandler a, b;
    const net::HostId ha = net.attach("a", a);
    const net::HostId hb = net.attach("b", b);
    // Warm the buffer pool and the event slab.
    for (int i = 0; i < kBatch; ++i) net.send(ha, hb, Bytes(payload));
    sim.run();
    const double ns = recorder.time_and_add(
        "net_datagram", /*iters=*/200, static_cast<double>(kBatch), [&] {
          for (int i = 0; i < kBatch; ++i) {
            Bytes buf = net.acquire_buffer();
            buf.assign(payload.begin(), payload.end());
            net.send(ha, hb, std::move(buf));
          }
          sim.run();
        });
    std::printf("BM_NetworkDatagram        %8.1f ns/msg  (%llu delivered)\n",
                ns / kBatch,
                static_cast<unsigned long long>(net.delivered_count()));
  }

  // --- connection send ------------------------------------------------------
  {
    sim::Simulator sim;
    net::Network net(sim, std::make_unique<net::FixedLatency>(0.0));
    SinkHandler a, b;
    const net::HostId ha = net.attach("a", a);
    const net::HostId hb = net.attach("b", b);
    auto conn = net.connect(ha, hb);
    sim.run();
    for (int i = 0; i < kBatch; ++i) net.send_on(*conn, ha, Bytes(payload));
    sim.run();
    const double ns = recorder.time_and_add(
        "net_conn_send", /*iters=*/200, static_cast<double>(kBatch), [&] {
          for (int i = 0; i < kBatch; ++i) {
            Bytes buf = net.acquire_buffer();
            buf.assign(payload.begin(), payload.end());
            net.send_on(*conn, ha, std::move(buf));
          }
          sim.run();
        });
    std::printf("BM_NetworkConnSend        %8.1f ns/msg\n", ns / kBatch);
  }

  // --- connect / teardown cycle --------------------------------------------
  {
    sim::Simulator sim;
    net::Network net(sim, std::make_unique<net::FixedLatency>(0.0));
    SinkHandler a, b;
    const net::HostId ha = net.attach("a", a);
    const net::HostId hb = net.attach("b", b);
    const double ns = recorder.time_and_add(
        "net_connect_teardown", /*iters=*/200, static_cast<double>(kBatch),
        [&] {
          for (int i = 0; i < kBatch; ++i) {
            auto conn = net.connect(ha, hb);
            net.close(*conn, ha);
          }
          sim.run();
        });
    std::printf("BM_NetworkConnectTeardown %8.1f ns/cycle\n", ns / kBatch);
  }

  recorder.write_json(out_path);
  return 0;
}
