// bench_ablation_proxies — proxy-count ablation (E11).
//
// The paper fixes np = 3 and notes (§4.2) that κ is independent of the
// number of proxies. This ablation shows what np actually buys: the
// all-proxies route decays like α^np while the launch-pad route GROWS with
// np (more proxies = more chances one falls and opens the direct channel).
// The net effect at realistic α is mildly negative beyond np = 1 — the
// architectural value of proxies is the κ reduction, not proxy redundancy —
// exactly why the paper keeps κ as the central parameter.
#include <cstdio>

#include "bench_util.hpp"
#include "model/step_model.hpp"

using namespace fortress;
using namespace fortress::bench;

int main() {
  const std::vector<double> kappas = {0.0, 0.25, 0.5, 0.9};
  const double alpha = 1e-3;

  std::printf("Proxy-count ablation: S2PO expected lifetime, alpha = %g, "
              "chi = 2^16\n\n", alpha);
  std::printf("%6s", "np");
  for (double k : kappas) std::printf("  %14s", ("kappa=" + std::to_string(k)).substr(0, 11).c_str());
  std::printf("\n");
  rule(6 + 16 * static_cast<int>(kappas.size()));

  // Flattened (np x kappa) grid over the shared pool; printed from slots in
  // index order afterward, identical to the sequential sweep.
  constexpr int kMaxNp = 6;
  std::vector<double> el(kMaxNp * kappas.size(), 0.0);
  parallel_grid(el.size(), [&](std::size_t idx) {
    const int np = 1 + static_cast<int>(idx / kappas.size());
    model::AttackParams p;
    p.alpha = alpha;
    p.kappa = kappas[idx % kappas.size()];
    p.chi = 1ull << 16;
    el[idx] = model::expected_lifetime_po(model::SystemShape::s2(np), p);
  });
  for (int np = 1; np <= kMaxNp; ++np) {
    std::printf("%6d", np);
    for (std::size_t ki = 0; ki < kappas.size(); ++ki) {
      std::printf("  %14.5g", el[(np - 1) * kappas.size() + ki]);
    }
    std::printf("\n");
  }
  rule(6 + 16 * static_cast<int>(kappas.size()));

  // Reference: S1PO (no proxies at all).
  model::AttackParams p;
  p.alpha = alpha;
  p.chi = 1ull << 16;
  std::printf("\nS1PO reference (no proxy tier): %.5g\n",
              model::expected_lifetime_po(model::SystemShape::s1(), p));
  std::printf("Observation: with kappa < 1 every np >= 1 beats S1PO; "
              "increasing np past 1 changes little because the kappa "
              "reduction, not redundancy, carries the benefit (and kappa is "
              "np-independent, Definition 5).\n");
  return 0;
}
