// bench_util.hpp — shared helpers for the reproduction benches.
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "analysis/evaluator.hpp"
#include "model/params.hpp"
#include "montecarlo/engine.hpp"

namespace fortress::bench {

/// Evaluate EL with the best available method, mirroring §5: analytic
/// (closed form / Markov) when it exists, Monte-Carlo otherwise. Returns the
/// EL and the method label.
struct ElResult {
  double el = 0.0;
  std::string method;
  bool censored = false;
};

inline model::SystemShape shape_of(model::SystemKind kind, int n_proxies = 3) {
  switch (kind) {
    case model::SystemKind::S0: return model::SystemShape::s0();
    case model::SystemKind::S1: return model::SystemShape::s1();
    case model::SystemKind::S2: return model::SystemShape::s2(n_proxies);
  }
  return model::SystemShape::s1();
}

inline ElResult evaluate_el(const model::SystemShape& shape,
                            const model::AttackParams& params,
                            model::Obfuscation obf,
                            std::uint64_t mc_trials = 200000,
                            std::uint64_t seed = 2026) {
  if (auto analytic = analysis::analytic_lifetime(shape, params, obf)) {
    return {analytic->expected_lifetime,
            analysis::to_string(analytic->method), false};
  }
  montecarlo::McConfig cfg;
  cfg.trials = mc_trials;
  cfg.seed = seed;
  cfg.max_steps = 1ull << 40;
  cfg.threads = 4;
  auto mc = montecarlo::estimate_lifetime(shape, params, obf,
                                          model::Granularity::Step, cfg);
  return {mc.expected_lifetime(), "monte-carlo", mc.any_censored()};
}

/// Print a horizontal rule sized to `width`.
inline void rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline const char* pass(bool ok) { return ok ? "PASS" : "FAIL"; }

}  // namespace fortress::bench
