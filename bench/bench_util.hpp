// bench_util.hpp — shared helpers for the reproduction benches.
#pragma once

#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/evaluator.hpp"
#include "exec/thread_pool.hpp"
#include "model/params.hpp"
#include "montecarlo/engine.hpp"

namespace fortress::bench {

/// Collects benchmark measurements and writes them as machine-readable JSON
/// (BENCH_results.json) so the perf trajectory can be tracked across PRs.
/// Schema: [{"name": str, "ns_per_op": num, "items_per_sec": num}, ...]
/// where items_per_sec is 0 when a bench has no natural item rate. A record
/// may carry further numeric keys (e.g. latency quantiles from the overload
/// bench); tools/bench_diff.py gates only ns_per_op and renders the extras
/// in its --report table.
class BenchRecorder {
 public:
  using Extras = std::vector<std::pair<std::string, double>>;

  void add(const std::string& name, double ns_per_op,
           double items_per_sec = 0.0, Extras extras = {}) {
    records_.push_back({name, ns_per_op, items_per_sec, std::move(extras)});
  }

  /// Time fn() called `iters` times and record mean ns/op. `items_per_op`
  /// scales the derived items/sec rate (e.g. trials per call).
  template <typename Fn>
  double time_and_add(const std::string& name, int iters, double items_per_op,
                      Fn&& fn) {
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) fn();
    double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    double ns_per_op = sec * 1e9 / iters;
    double items_per_sec =
        sec > 0.0 ? items_per_op * iters / sec : 0.0;
    add(name, ns_per_op, items_per_sec);
    return ns_per_op;
  }

  /// Write all records to `path`; returns false (and prints to stderr) on
  /// I/O failure.
  bool write_json(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "BenchRecorder: cannot open %s\n", path.c_str());
      return false;
    }
    std::fputs("[\n", f);
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(f,
                   "  {\"name\": \"%s\", \"ns_per_op\": %.3f, "
                   "\"items_per_sec\": %.3f",
                   r.name.c_str(), r.ns_per_op, r.items_per_sec);
      for (const auto& [key, value] : r.extras) {
        std::fprintf(f, ", \"%s\": %.6f", key.c_str(), value);
      }
      std::fprintf(f, "}%s\n", i + 1 < records_.size() ? "," : "");
    }
    std::fputs("]\n", f);
    std::fclose(f);
    return true;
  }

 private:
  struct Record {
    std::string name;
    double ns_per_op;
    double items_per_sec;
    Extras extras;
  };
  std::vector<Record> records_;
};

/// Evaluate EL with the best available method, mirroring §5: analytic
/// (closed form / Markov) when it exists, Monte-Carlo otherwise. Returns the
/// EL and the method label.
struct ElResult {
  double el = 0.0;
  std::string method;
  bool censored = false;
};

inline model::SystemShape shape_of(model::SystemKind kind, int n_proxies = 3) {
  switch (kind) {
    case model::SystemKind::S0: return model::SystemShape::s0();
    case model::SystemKind::S1: return model::SystemShape::s1();
    case model::SystemKind::S2: return model::SystemShape::s2(n_proxies);
  }
  return model::SystemShape::s1();
}

inline ElResult evaluate_el(const model::SystemShape& shape,
                            const model::AttackParams& params,
                            model::Obfuscation obf,
                            std::uint64_t mc_trials = 200000,
                            std::uint64_t seed = 2026,
                            unsigned mc_threads = 4) {
  if (auto analytic = analysis::analytic_lifetime(shape, params, obf)) {
    return {analytic->expected_lifetime,
            analysis::to_string(analytic->method), false};
  }
  montecarlo::McConfig cfg;
  cfg.trials = mc_trials;
  cfg.seed = seed;
  cfg.max_steps = 1ull << 40;
  cfg.threads = mc_threads;
  auto mc = montecarlo::estimate_lifetime(shape, params, obf,
                                          model::Granularity::Step, cfg);
  return {mc.expected_lifetime(), "monte-carlo", mc.any_censored()};
}

/// Run `n` independent parameter-grid cells over the shared thread pool (one
/// cell per chunk, dynamically scheduled). Cells must write results into
/// their own index slot and the caller must print AFTER the sweep, in index
/// order — output is then identical to the sequential sweep for any thread
/// count. Cells execute on pool workers, so they must not re-enter the pool:
/// inside a grid, call evaluate_el with mc_threads = 1 (the sequential MC
/// path never touches the pool; MC results are bit-identical either way).
template <typename Fn>
inline void parallel_grid(std::size_t n, Fn&& cell) {
  exec::ThreadPool::shared().parallel_chunks(
      n, /*chunk_size=*/1, /*parallelism=*/0,
      [&](std::uint64_t idx, std::uint64_t, std::uint64_t) {
        cell(static_cast<std::size_t>(idx));
      });
}

/// Print a horizontal rule sized to `width`.
inline void rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline const char* pass(bool ok) { return ok ? "PASS" : "FAIL"; }

}  // namespace fortress::bench
