// bench_fig1_lifetimes — reproduces Figure 1: "Expected Lifetime Comparison".
//
// The paper plots EL against attacker strength α ∈ [1e-5, 1e-2] (log-log)
// for the five system/policy combinations discussed in §6: S0SO, S1SO,
// S1PO, S2PO (κ = 0.5) and S0PO, with χ = 2^16. We print the same series
// (plus S2SO as a bonus column) using the §5 method per cell — closed form,
// numeric integration, or Monte-Carlo — and check the §6 ordering at
// every α.
#include <cstdio>

#include "bench_util.hpp"

using namespace fortress;
using namespace fortress::bench;

int main() {
  const double kappa = 0.5;
  const std::vector<double> alphas = {1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
                                      1e-3, 2e-3, 5e-3, 1e-2};
  // The six (system, policy) series of Figure 1, in column order.
  struct Combo {
    model::SystemKind kind;
    model::Obfuscation obf;
  };
  const std::vector<Combo> combos = {
      {model::SystemKind::S0, model::Obfuscation::StartupOnly},
      {model::SystemKind::S1, model::Obfuscation::StartupOnly},
      {model::SystemKind::S2, model::Obfuscation::StartupOnly},
      {model::SystemKind::S1, model::Obfuscation::Proactive},
      {model::SystemKind::S2, model::Obfuscation::Proactive},
      {model::SystemKind::S0, model::Obfuscation::Proactive},
  };

  std::printf("Figure 1 reproduction: expected lifetime (whole unit steps) "
              "vs alpha\n");
  std::printf("chi = 2^16, kappa = %.2f, EL convention: (1-p)/p for "
              "memoryless p\n\n", kappa);
  std::printf("%10s %14s %14s %14s %14s %14s %14s\n", "alpha", "S0SO", "S1SO",
              "S2SO", "S1PO", "S2PO", "S0PO");
  rule(100);

  // Flatten the (alpha x series) grid and fan it over the shared pool; each
  // cell fills its own slot, so the printed table is identical to the
  // sequential sweep for any thread count.
  std::vector<double> el(alphas.size() * combos.size(), 0.0);
  parallel_grid(el.size(), [&](std::size_t idx) {
    const std::size_t ai = idx / combos.size();
    const Combo& c = combos[idx % combos.size()];
    model::AttackParams p;
    p.alpha = alphas[ai];
    p.kappa = kappa;
    p.chi = 1ull << 16;
    el[idx] = evaluate_el(shape_of(c.kind), p, c.obf, 200000, 2026,
                          /*mc_threads=*/1).el;
  });

  bool chain_holds = true;
  for (std::size_t ai = 0; ai < alphas.size(); ++ai) {
    const double* row = &el[ai * combos.size()];
    const double s0so = row[0], s1so = row[1], s2so = row[2], s1po = row[3],
                 s2po = row[4], s0po = row[5];
    std::printf("%10.0e %14.4g %14.4g %14.4g %14.4g %14.4g %14.4g\n",
                alphas[ai], s0so, s1so, s2so, s1po, s2po, s0po);
    chain_holds = chain_holds && (s0po > s2po) && (s2po > s1po) &&
                  (s1po > s1so) && (s1so > s0so);
  }

  rule(100);
  std::printf("\nPaper trend (summary chain at kappa=0.5):\n");
  std::printf("  S0PO > S2PO > S1PO > S1SO > S0SO across the full alpha "
              "range: %s\n", pass(chain_holds));
  return chain_holds ? 0 : 1;
}
