// bench_detection — E7: the §2.2 claim that proxies, by logging invalid
// requests and correlating server child crashes, can identify probing
// sources — and that evading detection forces the attacker to a smaller
// effective probe rate (the mechanism behind κ < 1).
//
// We run the LIVE FORTRESS deployment with the attacker's indirect rate
// swept from aggressive to stealthy and report: time until every proxy has
// blacklisted the attacker, and how many probes (= eliminated key
// candidates) the attacker managed before being shut out. The punchline:
// probes-before-detection is bounded regardless of rate, so the patient
// attacker gains nothing but time — and the impatient one is caught in a
// step or two.
#include <cstdio>
#include <memory>

#include "attack/derand_attacker.hpp"
#include "core/live_system.hpp"
#include "replication/service.hpp"

using namespace fortress;

namespace {

struct Run {
  double rate;                 // indirect probes per unit step
  double blacklist_time;       // sim time when ALL proxies blacklisted (-1 = never)
  std::uint64_t probes_sent;   // indirect probes before full blacklisting
  std::uint64_t crashes;       // server child crashes caused
};

Run run_once(double rate, std::uint32_t threshold, double window) {
  sim::Simulator sim;
  core::LiveConfig cfg;
  cfg.keyspace = 1 << 16;  // large: the attack will not succeed by luck
  cfg.policy = osl::ObfuscationPolicy::Rerandomize;
  cfg.step_duration = 100.0;
  cfg.seed = 11;
  cfg.proxy_blacklist = true;
  cfg.detection.threshold = threshold;
  cfg.detection.window = window;
  core::LiveS2 system(sim, cfg,
                      [](std::uint32_t) {
                        return std::make_unique<replication::KvService>();
                      });
  system.start();
  sim.run_until(5.0);

  attack::AttackerConfig acfg;
  acfg.keyspace = cfg.keyspace;
  acfg.step_duration = cfg.step_duration;
  acfg.probes_per_step = 0.0001;  // direct channel idle; isolate indirect
  acfg.indirect_probes_per_step = rate;
  acfg.seed = 23;
  attack::DerandAttacker attacker(sim, system.network(), acfg);
  attacker.set_indirect_channel(system.directory().proxies);
  attacker.start();

  Run out{rate, -1.0, 0, 0};
  const double horizon = 100.0 * 400;
  while (sim.now() < horizon) {
    sim.run_until(sim.now() + 50.0);
    int blacklisting = 0;
    for (int i = 0; i < system.n_proxies(); ++i) {
      if (system.proxy(i).blacklisted("attacker")) ++blacklisting;
    }
    if (blacklisting == system.n_proxies()) {
      out.blacklist_time = sim.now();
      break;
    }
  }
  out.probes_sent = attacker.stats().indirect_probes;
  for (int i = 0; i < system.n_servers(); ++i) {
    out.crashes += system.server_machine(i).child_crashes();
  }
  return out;
}

}  // namespace

int main() {
  std::printf("E7: proxy probe-source detection vs attacker pacing\n");
  std::printf("(live FORTRESS deployment, detection threshold = 5 events "
              "per 500-unit window, unit step = 100)\n\n");
  std::printf("%18s %18s %16s %14s\n", "indirect rate", "blacklisted at",
              "probes before", "child crashes");
  std::printf("%18s %18s %16s %14s\n", "(probes/step)", "(time units)",
              "shut-out", "caused");
  for (int i = 0; i < 68; ++i) std::putchar('-');
  std::putchar('\n');

  bool bounded = true;
  std::uint64_t max_probes = 0;
  for (double rate : {50.0, 20.0, 10.0, 5.0, 2.0, 1.0}) {
    Run r = run_once(rate, 5, 500.0);
    std::printf("%18.1f %18.1f %16llu %14llu\n", r.rate, r.blacklist_time,
                static_cast<unsigned long long>(r.probes_sent),
                static_cast<unsigned long long>(r.crashes));
    if (r.blacklist_time < 0) bounded = false;
    max_probes = std::max(max_probes, r.probes_sent);
  }
  for (int i = 0; i < 68; ++i) std::putchar('-');
  std::putchar('\n');

  // A rate slow enough to stay under the threshold: the kappa mechanism.
  Run stealthy = run_once(0.5, 5, 500.0);
  std::printf("\nStealthy attacker at 0.5 probes/step: blacklisted at %s, "
              "probes delivered = %llu\n",
              stealthy.blacklist_time < 0 ? "never" : "some point",
              static_cast<unsigned long long>(stealthy.probes_sent));
  std::printf("\nAll attackers above the detection rate are shut out: %s\n",
              bounded ? "PASS" : "FAIL");
  std::printf("Probes deliverable before shut-out stay bounded (max %llu of "
              "65536 candidates): %s\n",
              static_cast<unsigned long long>(max_probes),
              max_probes < 65536 / 100 ? "PASS" : "FAIL");
  std::printf("=> evading detection forces the attacker to a reduced "
              "effective rate: this is Definition 5's kappa < 1.\n");
  return bounded ? 0 : 1;
}
