// bench_ablation_period — re-randomization-period ablation (absorbing
// Markov chains).
//
// §4.1 sets the period P to one unit step. The chains built by
// analysis::build_po_chain support general P: a node compromised mid-period
// stays controlled until the next boundary, so S0/S2 lifetimes degrade as P
// grows (S1's single memoryless channel is period-invariant). This is the
// quantitative version of the paper's argument that frequent
// re-randomization is what separates PO from SO: as P -> infinity, PO
// degenerates toward SO behaviour.
#include <cstdio>

#include "analysis/markov.hpp"
#include "bench_util.hpp"

using namespace fortress;
using namespace fortress::bench;

int main() {
  const double alpha = 1e-2;
  const double kappa = 0.5;
  const std::vector<std::uint32_t> periods = {1, 2, 4, 8, 16, 32, 64};

  std::printf("Re-randomization period ablation (absorbing Markov chains), "
              "alpha = %g, kappa = %g\n\n", alpha, kappa);
  std::printf("%8s %14s %14s %14s %10s\n", "period", "S0PO", "S2PO", "S1PO",
              "states");
  rule(66);

  // One grid cell per period row, fanned over the shared pool; rows land in
  // per-index slots so the printed table matches the sequential sweep.
  struct Row {
    double s0 = 0.0, s2 = 0.0, s1 = 0.0;
    std::size_t states = 0;
  };
  std::vector<Row> rows(periods.size());
  parallel_grid(rows.size(), [&](std::size_t idx) {
    model::AttackParams p;
    p.alpha = alpha;
    p.kappa = kappa;
    p.chi = 1ull << 16;
    p.period = periods[idx];
    auto chain_s0 = analysis::build_po_chain(model::SystemShape::s0(), p);
    rows[idx] = {analysis::expected_lifetime_markov(model::SystemShape::s0(), p),
                 analysis::expected_lifetime_markov(model::SystemShape::s2(), p),
                 analysis::expected_lifetime_markov(model::SystemShape::s1(), p),
                 chain_s0.chain.transient_count()};
  });

  bool s0_monotone = true, s2_monotone = true;
  double prev_s0 = 1e300, prev_s2 = 1e300;
  for (std::size_t i = 0; i < periods.size(); ++i) {
    const Row& r = rows[i];
    std::printf("%8u %14.5g %14.5g %14.5g %10zu\n", periods[i], r.s0, r.s2,
                r.s1, r.states);
    if (r.s0 >= prev_s0) s0_monotone = false;
    if (r.s2 >= prev_s2) s2_monotone = false;
    prev_s0 = r.s0;
    prev_s2 = r.s2;
  }
  rule(66);

  // SO reference: the P -> infinity limit for S0.
  model::AttackParams p;
  p.alpha = alpha;
  p.kappa = kappa;
  p.chi = 1ull << 16;
  double s0so = evaluate_el(shape_of(model::SystemKind::S0), p,
                            model::Obfuscation::StartupOnly).el;
  std::printf("\nS0SO reference (the no-rerandomization limit): %.5g\n", s0so);
  std::printf("S0 lifetime strictly decreases with the period: %s\n",
              pass(s0_monotone));
  std::printf("S2 lifetime strictly decreases with the period: %s\n",
              pass(s2_monotone));
  return (s0_monotone && s2_monotone) ? 0 : 1;
}
