// bench_micro — E12: google-benchmark microbenchmarks for the computational
// kernels: SHA-256, HMAC, message codec, Markov-chain solving, Monte-Carlo
// trial rates and the discrete-event simulator core.
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <string>

#include "analysis/markov.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "crypto/batch.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha256_kernel.hpp"
#include "model/lifetime_sim.hpp"
#include "montecarlo/engine.hpp"
#include "replication/message.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace fortress;

void BM_Sha256(benchmark::State& state) {
  Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  Bytes key = bytes_of("principal-secret");
  Bytes data(static_cast<std::size_t>(state.range(0)), 0x5c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(256)->Arg(4096);

void BM_MessageEncodeDecode(benchmark::State& state) {
  crypto::KeyRegistry registry(1);
  crypto::SigningKey key = registry.enroll("server-0");
  replication::Message msg;
  msg.type = replication::MsgType::Response;
  msg.request_id = {"client", 42};
  msg.payload = Bytes(256, 0x11);
  replication::sign_message(msg, key);
  for (auto _ : state) {
    Bytes wire = msg.encode();
    auto decoded = replication::Message::decode(wire);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_MessageEncodeDecode);

void BM_SignVerify(benchmark::State& state) {
  crypto::KeyRegistry registry(1);
  crypto::SigningKey key = registry.enroll("server-0");
  replication::Message msg;
  msg.payload = Bytes(256, 0x22);
  for (auto _ : state) {
    replication::sign_message(msg, key);
    benchmark::DoNotOptimize(replication::verify_message(msg, registry));
  }
}
BENCHMARK(BM_SignVerify);

void BM_MarkovChainSolve(benchmark::State& state) {
  model::AttackParams p;
  p.alpha = 1e-3;
  p.kappa = 0.5;
  p.period = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::expected_lifetime_markov(model::SystemShape::s2(), p));
  }
}
BENCHMARK(BM_MarkovChainSolve)->Arg(1)->Arg(16)->Arg(128);

void BM_LifetimeTrialSo(benchmark::State& state) {
  model::AttackParams p;
  p.alpha = 1e-4;
  p.kappa = 0.5;
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::simulate_lifetime(
        model::SystemShape::s2(), p, model::Obfuscation::StartupOnly,
        model::Granularity::Step, rng, 1ull << 40));
  }
}
BENCHMARK(BM_LifetimeTrialSo);

void BM_LifetimeTrialPoProbe(benchmark::State& state) {
  model::AttackParams p;
  p.alpha = 1e-3;
  p.kappa = 0.5;
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::simulate_lifetime(
        model::SystemShape::s2(), p, model::Obfuscation::Proactive,
        model::Granularity::Probe, rng, 1ull << 40));
  }
}
BENCHMARK(BM_LifetimeTrialPoProbe);

void BM_McEstimateLifetime(benchmark::State& state) {
  // End-to-end Monte-Carlo engine throughput (trials/sec in the items/sec
  // counter): chunked dynamic scheduling + allocation-free trial kernel.
  model::AttackParams p;
  p.alpha = 1e-3;
  p.kappa = 0.5;
  montecarlo::McConfig cfg;
  cfg.trials = 50000;
  cfg.seed = 7;
  cfg.threads = static_cast<unsigned>(state.range(0));
  cfg.max_steps = 1ull << 40;
  for (auto _ : state) {
    benchmark::DoNotOptimize(montecarlo::estimate_lifetime(
        model::SystemShape::s2(), p, model::Obfuscation::Proactive,
        model::Granularity::Step, cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cfg.trials));
}
BENCHMARK(BM_McEstimateLifetime)->Arg(1)->Arg(4);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  // A chain of 1000 self-scheduling events, the idiomatic way callbacks are
  // scheduled since the slab/EventFn rework: a plain callable moved into the
  // simulator, no std::function wrapper on the hot path.
  struct Chain {
    sim::Simulator* sim;
    int* count;
    void operator()() const {
      if (++*count < 1000) sim->schedule_after(1.0, Chain{sim, count});
    }
  };
  for (auto _ : state) {
    sim::Simulator sim;
    int count = 0;
    sim.schedule_after(1.0, Chain{&sim, &count});
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_SimulatorEventThroughputStdFunction(benchmark::State& state) {
  // Legacy shape of the bench above: the chained handler is copied through a
  // std::function per event, as the pre-slab schedule_at(std::function)
  // signature forced. Kept to show what the EventFn conversion costs when a
  // caller still routes through std::function.
  for (auto _ : state) {
    sim::Simulator sim;
    int count = 0;
    std::function<void()> chain = [&] {
      if (++count < 1000) sim.schedule_after(1.0, chain);
    };
    sim.schedule_after(1.0, chain);
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_SimulatorEventThroughputStdFunction);

void BM_SimulatorScheduleCancel(benchmark::State& state) {
  // Schedule + cancel churn: exercises the slab free list and the O(1)
  // generation-checked cancel with heap tombstone reclamation.
  sim::Simulator sim;
  for (auto _ : state) {
    sim::EventId ids[64];
    for (int i = 0; i < 64; ++i) {
      ids[i] = sim.schedule_after(1.0 + i, [] {});
    }
    for (int i = 0; i < 64; ++i) benchmark::DoNotOptimize(sim.cancel(ids[i]));
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_SimulatorScheduleCancel);

void BM_RngGeometric(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.geometric(1e-6));
  }
}
BENCHMARK(BM_RngGeometric);

template <typename Fn>
double time_ns(int iters, Fn&& fn) {
  fn();  // warm caches / page in the lanes before the timed loop
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
             .count() *
         1e9 / iters;
}

// BenchRecorder-schema crypto records, written next to the google-benchmark
// JSON: unlike that output (informational), these entries are diffed by the
// bench_diff target against bench/baseline.json. Each record carries the
// numeric SHA-256 dispatch tier (0 = scalar, 1 = avx2, 2 = sha-ni) so a
// perf number is always explicable by the kernel that produced it.
bool write_crypto_records(const std::string& path) {
  bench::BenchRecorder rec;
  const double tier =
      static_cast<double>(static_cast<int>(crypto::kernel::active_tier()));
  const bench::BenchRecorder::Extras extras = {{"dispatch_tier", tier}};

  {
    Bytes data(1024, 0xab);
    double ns = time_ns(30000, [&] {
      crypto::Digest d = crypto::Sha256::hash(data);
      benchmark::DoNotOptimize(d);
    });
    rec.add("micro.sha256_1k", ns, 1e9 / ns * 1024.0, extras);
  }
  {
    crypto::HmacKey schedule(bytes_of("principal-secret"));
    Bytes data(256, 0x5c);
    double ns = time_ns(30000, [&] {
      crypto::Digest d = schedule.mac(data);
      benchmark::DoNotOptimize(d);
    });
    rec.add("micro.hmac_sign", ns, 1e9 / ns, extras);
  }
  {
    // Eight (schedule, message, tag) triples verified through one full lane
    // group — the shape the machine's staging plane flushes.
    crypto::HmacKey schedule(bytes_of("principal-secret"));
    std::vector<Bytes> msgs;
    std::vector<crypto::Digest> tags;
    for (int i = 0; i < 8; ++i) {
      msgs.emplace_back(256, static_cast<std::uint8_t>(0x20 + i));
      tags.push_back(schedule.mac(msgs.back()));
    }
    crypto::BatchVerifier batch;
    double ns = time_ns(10000, [&] {
      batch.clear();
      for (int i = 0; i < 8; ++i) {
        batch.enqueue(&schedule, msgs[static_cast<std::size_t>(i)],
                      BytesView(tags[static_cast<std::size_t>(i)].data(),
                                tags[static_cast<std::size_t>(i)].size()));
      }
      batch.flush();
      for (std::size_t i = 0; i < 8; ++i) {
        benchmark::DoNotOptimize(batch.verdict(i));
      }
    });
    rec.add("micro.verify_batch8", ns, 1e9 / ns * 8.0, extras);
  }
  return rec.write_json(path);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  // Everything google-benchmark did not consume is the BenchRecorder output
  // path for the gated crypto records.
  const std::string out =
      argc > 1 ? argv[argc - 1] : "BENCH_micro_crypto.json";
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return write_crypto_records(out) ? 0 : 1;
}
