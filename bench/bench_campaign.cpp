// bench_campaign — scenario-campaign throughput and thread-scaling bench.
//
// Runs one fixed campaign grid (S1 + S2 under two scenario plans) at 1, 2, 4
// and 8 worker threads, reporting live trials/sec per configuration. Two
// properties are checked, not just measured:
//
//  1. Determinism: the aggregate statistics of every cell must be
//     BIT-identical at every thread count (the campaign's ordering
//     contract). Any mismatch is a hard failure.
//  2. Scaling: on a multi-core box the trials/sec column should grow
//     near-linearly up to the hardware thread count (trials are
//     embarrassingly parallel: one Simulator+LiveSystem per trial).
//
// Writes BenchRecorder JSON (campaign_trials_t{N}) to the optional argv[1]
// path (default BENCH_campaign.json). tools/bench_diff.py understands the
// schema for standalone comparisons of two campaign result files; note the
// `bench_diff` CMake target gates bench/baseline.json against
// BENCH_results.json only — campaign entries do not belong in that baseline.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "scenario/campaign.hpp"

using namespace fortress;
using namespace fortress::bench;
using namespace fortress::scenario;

namespace {

// FNV-1a over the raw bytes of every aggregate field: any single-bit
// divergence between thread counts changes the fingerprint.
class Fingerprint {
 public:
  void add_bytes(const void* p, std::size_t n) {
    const unsigned char* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= b[i];
      h_ *= 0x100000001b3ULL;
    }
  }
  template <typename T>
  void add(T v) {
    add_bytes(&v, sizeof v);
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

std::uint64_t fingerprint(const CampaignResult& r) {
  Fingerprint fp;
  for (const CellStats& c : r.cells) {
    fp.add(c.trials);
    fp.add(c.compromised);
    fp.add(c.censored);
    fp.add(c.lifetime.mean());
    fp.add(c.lifetime.variance());
    fp.add(c.lifetime_ci.lo);
    fp.add(c.lifetime_ci.hi);
    fp.add(c.attacker.direct_probes);
    fp.add(c.attacker.indirect_probes);
    fp.add(c.attacker.crashes_caused);
    fp.add(c.attacker.compromises);
    fp.add(c.attacker.keys_learned);
    fp.add(c.events_executed);
    fp.add(c.blacklisted_sources);
  }
  fp.add(r.total_trials);
  fp.add(r.total_events);
  return fp.value();
}

net::ScenarioPlan bench_plan(std::uint64_t chi, double kappa) {
  net::ScenarioPlan plan;
  plan.name = "chi" + std::to_string(chi);
  plan.keyspace = chi;
  plan.attack.probes_per_step = 8.0;
  plan.attack.indirect_fraction = kappa;
  plan.horizon_steps = 40;
  plan.latency = net::LatencySpec::uniform(0.01, 0.02);
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_campaign.json";

  std::vector<CampaignCell> cells =
      cross({model::SystemKind::S1, model::SystemKind::S2},
            {bench_plan(128, 0.5), bench_plan(256, 0.25)});

  CampaignConfig cfg;
  cfg.trials_per_cell = 64;
  cfg.base_seed = 7;
  const std::uint64_t grid_trials =
      cfg.trials_per_cell * static_cast<std::uint64_t>(cells.size());

  std::printf("Campaign thread-scaling bench: %zu cells x %llu trials\n\n",
              cells.size(),
              static_cast<unsigned long long>(cfg.trials_per_cell));
  std::printf("%8s %12s %14s %10s  %s\n", "threads", "trials/sec", "events/sec",
              "speedup", "aggregate fingerprint");
  rule(76);

  BenchRecorder recorder;
  std::uint64_t reference_fp = 0;
  double t1_rate = 0.0;
  bool identical = true;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    cfg.threads = threads;
    CampaignResult result;
    const std::string name = "campaign_trials_t" + std::to_string(threads);
    const double ns_per_op = recorder.time_and_add(
        name, /*iters=*/3, static_cast<double>(grid_trials),
        [&] { result = run_campaign(cells, cfg); });
    const double sec = ns_per_op / 1e9;
    const double rate = static_cast<double>(grid_trials) / sec;
    const double ev_rate = static_cast<double>(result.total_events) / sec;
    const std::uint64_t fp = fingerprint(result);
    if (threads == 1) {
      reference_fp = fp;
      t1_rate = rate;
    }
    identical = identical && fp == reference_fp;
    std::printf("%8u %12.0f %14.0f %9.2fx  %016llx%s\n", threads, rate,
                ev_rate, rate / t1_rate,
                static_cast<unsigned long long>(fp),
                fp == reference_fp ? "" : "  <-- MISMATCH");
  }
  rule(76);
  std::printf("\nAggregates bit-identical across thread counts: %s\n",
              pass(identical));

  recorder.write_json(out_path);
  return identical ? 0 : 1;
}
