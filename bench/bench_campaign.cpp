// bench_campaign — scenario-campaign throughput and thread-scaling bench.
//
// Runs one fixed campaign grid (S1 + S2 under two scenario plans) at 1, 2, 4
// and 8 worker threads, reporting live trials/sec per configuration. Two
// properties are checked, not just measured:
//
//  1. Determinism: the aggregate statistics of every cell must be
//     BIT-identical at every thread count (the campaign's ordering
//     contract). Any mismatch is a hard failure.
//  2. Scaling: on a multi-core box the trials/sec column should grow
//     near-linearly up to the hardware thread count (trials are
//     embarrassingly parallel: one Simulator+LiveSystem per trial).
//
// Two further sections gate the PR-3 additions:
//
//  3. Trial-stack pooling: the same small-horizon grid run on fresh
//     per-trial stacks vs pooled per-worker TrialArenas. Aggregate
//     identity is ENFORCED (exit code); the >= 1.5x pooled speedup is
//     REPORTED here, and regressions of the pooled path's ns/trial are
//     gated by bench_diff against the committed baseline.
//  4. Adaptive sampling: the rounds-based stopping rule vs the fixed
//     budget, reporting trials/sec and the per-cell trial allocation.
//
//  5. Work-stealing rounds: a closed-cell-heavy grid (many calm cells that
//     close in round one on the absolute CI floor, two noisy cells that run
//     to the cap) with round reissue off vs on. The noisy cells are
//     cap-bound, so both schedules land on identical per-cell trial counts
//     and the aggregates must be BIT-identical (enforced); stealing just
//     reaches the cap in far fewer serial rounds, which is the reported
//     speedup.
//
// Writes BenchRecorder JSON (campaign_trials_t{N}, campaign_trial_fresh /
// _pooled, campaign_trials_adaptive, campaign_adaptive_nosteal / _steal) to
// the optional argv[1] path (default BENCH_campaign.json). The `bench_diff`
// CMake target now gates these entries against bench/baseline.json
// alongside the BENCH_results.json ones, so trials/sec regressions in the
// pooled/adaptive paths fail CI like any ns/op regression.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "scenario/campaign.hpp"

using namespace fortress;
using namespace fortress::bench;
using namespace fortress::scenario;

namespace {

// FNV-1a over the raw bytes of every aggregate field: any single-bit
// divergence between thread counts changes the fingerprint.
class Fingerprint {
 public:
  void add_bytes(const void* p, std::size_t n) {
    const unsigned char* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= b[i];
      h_ *= 0x100000001b3ULL;
    }
  }
  template <typename T>
  void add(T v) {
    add_bytes(&v, sizeof v);
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

std::uint64_t fingerprint(const CampaignResult& r) {
  Fingerprint fp;
  for (const CellStats& c : r.cells) {
    fp.add(c.trials);
    fp.add(c.compromised);
    fp.add(c.censored);
    fp.add(c.lifetime.mean());
    fp.add(c.lifetime.variance());
    fp.add(c.lifetime_ci.lo);
    fp.add(c.lifetime_ci.hi);
    fp.add(c.attacker.direct_probes);
    fp.add(c.attacker.indirect_probes);
    fp.add(c.attacker.crashes_caused);
    fp.add(c.attacker.compromises);
    fp.add(c.attacker.keys_learned);
    fp.add(c.events_executed);
    fp.add(c.blacklisted_sources);
  }
  fp.add(r.total_trials);
  fp.add(r.total_events);
  return fp.value();
}

net::ScenarioPlan bench_plan(std::uint64_t chi, double kappa) {
  net::ScenarioPlan plan;
  plan.name = "chi" + std::to_string(chi);
  plan.keyspace = chi;
  plan.attack.probes_per_step = 8.0;
  plan.attack.indirect_fraction = kappa;
  plan.horizon_steps = 40;
  plan.latency = net::LatencySpec::uniform(0.01, 0.02);
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_campaign.json";

  std::vector<CampaignCell> cells =
      cross({model::SystemKind::S1, model::SystemKind::S2},
            {bench_plan(128, 0.5), bench_plan(256, 0.25)});

  CampaignConfig cfg;
  cfg.trials_per_cell = 64;
  cfg.base_seed = 7;
  const std::uint64_t grid_trials =
      cfg.trials_per_cell * static_cast<std::uint64_t>(cells.size());

  std::printf("Campaign thread-scaling bench: %zu cells x %llu trials\n\n",
              cells.size(),
              static_cast<unsigned long long>(cfg.trials_per_cell));
  std::printf("%8s %12s %14s %10s  %s\n", "threads", "trials/sec", "events/sec",
              "speedup", "aggregate fingerprint");
  rule(76);

  BenchRecorder recorder;
  std::uint64_t reference_fp = 0;
  double t1_rate = 0.0;
  bool identical = true;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    cfg.threads = threads;
    CampaignResult result;
    const std::string name = "campaign_trials_t" + std::to_string(threads);
    const double ns_per_op = recorder.time_and_add(
        name, /*iters=*/3, static_cast<double>(grid_trials),
        [&] { result = run_campaign(cells, cfg); });
    const double sec = ns_per_op / 1e9;
    const double rate = static_cast<double>(grid_trials) / sec;
    const double ev_rate = static_cast<double>(result.total_events) / sec;
    const std::uint64_t fp = fingerprint(result);
    if (threads == 1) {
      reference_fp = fp;
      t1_rate = rate;
    }
    identical = identical && fp == reference_fp;
    std::printf("%8u %12.0f %14.0f %9.2fx  %016llx%s\n", threads, rate,
                ev_rate, rate / t1_rate,
                static_cast<unsigned long long>(fp),
                fp == reference_fp ? "" : "  <-- MISMATCH");
  }
  rule(76);
  std::printf("\nAggregates bit-identical across thread counts: %s\n",
              pass(identical));

  // --- trial-stack pooling: fresh vs arena-reset stacks -------------------
  // The screening-campaign shape: a 1-step horizon with a short
  // re-randomization period, the regime where per-trial setup (registry,
  // network, machines, replicas) dominates and pooling pays — exactly the
  // workload of a wide triage sweep that runs thousands of cheap cells
  // before committing full horizons to the interesting ones.
  std::vector<CampaignCell> small_cells =
      cross({model::SystemKind::S1, model::SystemKind::S2},
            {bench_plan(128, 0.5), bench_plan(256, 0.25)});
  for (CampaignCell& cell : small_cells) {
    cell.plan.horizon_steps = 1;
    cell.plan.step_duration = 5.0;
    cell.plan.attack.start_time = 1.0;
  }

  CampaignConfig pool_cfg;
  pool_cfg.trials_per_cell = 256;
  pool_cfg.base_seed = 7;
  pool_cfg.threads = 1;  // isolate per-trial cost from scheduling effects
  const std::uint64_t pool_trials =
      pool_cfg.trials_per_cell * static_cast<std::uint64_t>(small_cells.size());

  std::printf("\nTrial-stack pooling (1-step screening grid, %llu trials, "
              "1 thread):\n\n",
              static_cast<unsigned long long>(pool_trials));
  std::printf("%8s %12s %14s\n", "stacks", "trials/sec", "ns/trial");
  rule(40);
  double fresh_rate = 0.0;
  double pooled_rate = 0.0;
  std::uint64_t fp_fresh = 0;
  std::uint64_t fp_pooled = 0;
  for (bool pooled : {false, true}) {
    pool_cfg.reuse_trial_stacks = pooled;
    CampaignResult result;
    const std::string name =
        pooled ? "campaign_trial_pooled" : "campaign_trial_fresh";
    const double ns_per_trial = recorder.time_and_add(
        name, /*iters=*/10, 1.0,
        [&] { result = run_campaign(small_cells, pool_cfg); }) /
        static_cast<double>(pool_trials);
    const double rate = 1e9 / ns_per_trial;
    (pooled ? pooled_rate : fresh_rate) = rate;
    (pooled ? fp_pooled : fp_fresh) = fingerprint(result);
    std::printf("%8s %12.0f %14.0f\n", pooled ? "pooled" : "fresh", rate,
                ns_per_trial);
  }
  rule(40);
  const bool pool_identical = fp_pooled == fp_fresh;
  identical = identical && pool_identical;
  std::printf("pooled speedup: %.2fx (want >= 1.5x at small horizons); "
              "aggregates identical: %s\n",
              pooled_rate / fresh_rate, pass(pool_identical));

  // --- adaptive sampling vs the fixed budget ------------------------------
  CampaignConfig ad_cfg;
  ad_cfg.base_seed = 7;
  ad_cfg.threads = 1;
  ad_cfg.adaptive.enabled = true;
  ad_cfg.adaptive.round_trials = 16;
  ad_cfg.adaptive.target_rel_ci = 0.10;
  ad_cfg.adaptive.max_trials_per_cell = 192;
  CampaignResult adaptive_result;
  const double ad_ns = recorder.time_and_add(
      "campaign_trials_adaptive", /*iters=*/3, 1.0,
      [&] { adaptive_result = run_campaign(cells, ad_cfg); });
  const double ad_rate =
      static_cast<double>(adaptive_result.total_trials) / (ad_ns / 1e9);

  std::printf("\nAdaptive sampling (target rel-CI %.2f, rounds of %llu, cap "
              "%llu):\n\n",
              ad_cfg.adaptive.target_rel_ci,
              static_cast<unsigned long long>(ad_cfg.adaptive.round_trials),
              static_cast<unsigned long long>(
                  ad_cfg.adaptive.max_trials_per_cell));
  std::printf("%8s %16s %8s %8s %12s %22s\n", "system", "plan", "trials",
              "rounds", "mean EL", "95% CI");
  rule(80);
  for (const CellStats& cell : adaptive_result.cells) {
    std::printf("%8s %16s %8llu %8llu %12.1f [%8.1f, %8.1f]\n",
                model::to_string(cell.system).c_str(), cell.plan_name.c_str(),
                static_cast<unsigned long long>(cell.trials),
                static_cast<unsigned long long>(cell.rounds),
                cell.mean_lifetime(), cell.lifetime_ci.lo, cell.lifetime_ci.hi);
  }
  rule(80);
  const std::uint64_t fixed_budget =
      ad_cfg.adaptive.max_trials_per_cell *
      static_cast<std::uint64_t>(cells.size());
  std::printf("adaptive: %llu trials at %.0f trials/sec (fixed budget at the "
              "cap would be %llu)\n",
              static_cast<unsigned long long>(adaptive_result.total_trials),
              ad_rate, static_cast<unsigned long long>(fixed_budget));

  // --- work-stealing rounds on a closed-cell-heavy grid -------------------
  // The triage-sweep shape the reissue planner exists for: most cells are
  // calm (near-zero-mean lifetimes, closed by the absolute CI floor after
  // round one) while a couple of noisy cells need the full cap. Without
  // stealing the noisy cells grind through cap/round_trials serial rounds at
  // round_trials each; with stealing they inherit the closed cells' capacity
  // and hit the cap in a round or two. Both schedules are cap-bound on the
  // noisy cells and close the calm cells at the same round-one boundary, so
  // per-cell trial counts — and therefore aggregates — must be bit-identical.
  std::vector<net::ScenarioPlan> steal_plans;
  for (std::uint64_t chi : {20ULL, 22ULL, 24ULL, 26ULL, 28ULL, 30ULL}) {
    net::ScenarioPlan calm = bench_plan(chi, 0.25);
    calm.name = "calm" + std::to_string(chi);
    calm.attack.probes_per_step = 16.0;
    steal_plans.push_back(calm);
  }
  net::ScenarioPlan noisy = bench_plan(512, 0.25);
  noisy.name = "noisy512";
  steal_plans.push_back(noisy);
  std::vector<CampaignCell> steal_cells =
      cross({model::SystemKind::S1, model::SystemKind::S2}, steal_plans);

  CampaignConfig steal_cfg;
  steal_cfg.base_seed = 7;
  steal_cfg.threads = 4;
  steal_cfg.adaptive.enabled = true;
  steal_cfg.adaptive.round_trials = 32;
  steal_cfg.adaptive.target_rel_ci = 0.02;  // unreachable for noisy cells
  steal_cfg.adaptive.abs_ci_floor = 0.5;    // closes the calm cells early
  steal_cfg.adaptive.max_trials_per_cell = 256;

  std::printf("\nWork-stealing rounds (%zu cells: %zu calm + 2 noisy, cap "
              "%llu, 4 threads):\n\n",
              steal_cells.size(), steal_cells.size() - 2,
              static_cast<unsigned long long>(
                  steal_cfg.adaptive.max_trials_per_cell));
  std::printf("%10s %12s %10s %10s\n", "stealing", "trials/sec", "trials",
              "rounds");
  rule(46);
  double nosteal_rate = 0.0;
  double steal_rate = 0.0;
  std::uint64_t fp_nosteal = 0;
  std::uint64_t fp_steal = 0;
  for (bool stealing : {false, true}) {
    steal_cfg.adaptive.work_stealing = stealing;
    CampaignResult result;
    const std::string name =
        stealing ? "campaign_adaptive_steal" : "campaign_adaptive_nosteal";
    const double ns = recorder.time_and_add(
        name, /*iters=*/3, 1.0,
        [&] { result = run_campaign(steal_cells, steal_cfg); });
    const double rate =
        static_cast<double>(result.total_trials) / (ns / 1e9);
    (stealing ? steal_rate : nosteal_rate) = rate;
    (stealing ? fp_steal : fp_nosteal) = fingerprint(result);
    std::uint64_t max_rounds = 0;
    for (const CellStats& cell : result.cells) {
      max_rounds = std::max(max_rounds, cell.rounds);
    }
    std::printf("%10s %12.0f %10llu %10llu\n", stealing ? "on" : "off", rate,
                static_cast<unsigned long long>(result.total_trials),
                static_cast<unsigned long long>(max_rounds));
  }
  rule(46);
  const bool steal_identical = fp_steal == fp_nosteal;
  identical = identical && steal_identical;
  std::printf("stealing speedup: %.2fx; aggregates identical: %s\n",
              steal_rate / nosteal_rate, pass(steal_identical));

  recorder.write_json(out_path);
  return identical ? 0 : 1;
}
