// bench_overload — overload-plane throughput and tail-latency bench.
//
// Drives the open-loop traffic generator against S1 deployments with a
// bounded service queue under each shed/degrade policy, and reports, per
// policy: trial throughput (ns/trial, gated by bench_diff) plus the
// campaign's new tail-latency aggregates (p50/p99/p999 of completed
// requests, mean per-trial goodput, shed and timed-out counts) as extra
// JSON keys that bench_diff's --report renders but does not gate.
//
// Two properties are enforced, not just measured:
//
//  1. Determinism: every policy cell's traffic aggregates (latency
//     histogram fingerprint included) must be bit-identical between the
//     1-thread and 4-thread campaign runs.
//  2. Inertness: a control cell running the SAME plan with the service
//     queue and traffic generator disabled measures the probe-horizon
//     path; its ns/trial is recorded as overload_probe_only and gated by
//     bench_diff against the committed baseline, bounding the overhead the
//     overload plane is allowed to impose on plans that do not opt in.
//
// Writes BenchRecorder JSON to the optional argv[1] path (default
// BENCH_overload.json).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "scenario/campaign.hpp"

using namespace fortress;
using namespace fortress::bench;
using namespace fortress::scenario;

namespace {

net::ScenarioPlan overload_plan(net::OverloadPolicy policy, double rate) {
  net::ScenarioPlan plan;
  plan.name = "bench-overload";
  plan.latency = net::LatencySpec::fixed(0.1);
  plan.attack.enabled = false;
  plan.keyspace = 1ull << 10;
  plan.step_duration = 200.0;
  plan.horizon_steps = 1;
  plan.n_servers = 3;
  plan.service.enabled = true;
  plan.service.request_service = net::LatencySpec::fixed(0.2);
  plan.service.response_service = net::LatencySpec::fixed(0.02);
  plan.service.queue_capacity = 16;
  plan.service.degrade_watermark = 8;
  plan.service.pushback_delay = 1.0;
  plan.service.policy = policy;
  plan.traffic.schedule = {net::RatePhase{0.0, rate},
                           net::RatePhase{160.0, 0.0}};
  plan.traffic.clients = 4;
  plan.traffic.write_fraction = 0.5;
  plan.traffic.distinct_keys = 8;
  plan.traffic.retry_base = 4.0;
  plan.traffic.retry_cap = 16.0;
  plan.traffic.retry_jitter = 0.1;
  plan.traffic.retry_budget = 4;
  plan.traffic.request_deadline = 30.0;
  return plan;
}

/// The DegradeUnsigned cell splits service into base + verification so
/// degrading actually buys capacity back.
net::ScenarioPlan degrade_overload_plan(double rate) {
  net::ScenarioPlan plan =
      overload_plan(net::OverloadPolicy::DegradeUnsigned, rate);
  plan.service.request_service = net::LatencySpec::fixed(0.05);
  plan.service.verify_cost = 0.15;
  return plan;
}

/// Probe-horizon control: the same deployment and horizon with the
/// overload plane fully disabled (no service queue, no traffic), driven by
/// the standard attack instead — the path every pre-existing plan takes.
net::ScenarioPlan probe_only_plan() {
  net::ScenarioPlan plan;
  plan.name = "bench-probe-only";
  plan.latency = net::LatencySpec::fixed(0.1);
  plan.keyspace = 128;
  plan.attack.probes_per_step = 8.0;
  plan.attack.indirect_fraction = 0.5;
  plan.step_duration = 200.0;
  plan.horizon_steps = 1;
  plan.n_servers = 3;
  return plan;
}

/// Wall-clock seconds spent in fn().
template <typename Fn>
double timed(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

bool traffic_identical(const TrafficStats& a, const TrafficStats& b) {
  return a.offered == b.offered && a.completed == b.completed &&
         a.timed_out == b.timed_out && a.gave_up == b.gave_up &&
         a.retries == b.retries && a.enqueued == b.enqueued &&
         a.served == b.served && a.shed == b.shed &&
         a.backpressured == b.backpressured && a.degraded == b.degraded &&
         a.dropped_on_reboot == b.dropped_on_reboot &&
         a.max_queue_depth == b.max_queue_depth && a.goodput == b.goodput &&
         a.latency.fingerprint() == b.latency.fingerprint();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_overload.json";
  BenchRecorder rec;

  struct PolicyCase {
    const char* tag;
    net::ScenarioPlan plan;
  };
  const std::vector<PolicyCase> cases = {
      {"overload_droptail", overload_plan(net::OverloadPolicy::DropTail, 15.0)},
      {"overload_shednewest",
       overload_plan(net::OverloadPolicy::ShedNewest, 15.0)},
      {"overload_backpressure",
       overload_plan(net::OverloadPolicy::Backpressure, 7.0)},
      {"overload_degrade", degrade_overload_plan(15.0)},
  };

  CampaignConfig cfg;
  cfg.trials_per_cell = 8;
  cfg.base_seed = 7;

  std::printf("Overload-plane bench: %zu policy cells x %llu trials\n\n",
              cases.size(),
              static_cast<unsigned long long>(cfg.trials_per_cell));
  std::printf("%-22s %12s %9s %9s %9s %10s %8s %8s\n", "policy", "ns/trial",
              "p50", "p99", "p999", "goodput/t", "shed", "t-out");
  rule(96);

  bool deterministic = true;
  for (const PolicyCase& pc : cases) {
    const std::vector<CampaignCell> cells = {{model::SystemKind::S1, pc.plan}};
    CampaignResult r1, r4;
    cfg.threads = 1;
    const double sec = timed([&] { r1 = run_campaign(cells, cfg); });
    cfg.threads = 4;
    r4 = run_campaign(cells, cfg);
    const TrafficStats& t = r1.cells[0].traffic;
    if (!traffic_identical(t, r4.cells[0].traffic)) {
      std::printf("MISMATCH: %s aggregates differ between 1 and 4 threads\n",
                  pc.tag);
      deterministic = false;
    }
    const double per_trial =
        sec * 1e9 / static_cast<double>(cfg.trials_per_cell);
    rec.add(pc.tag, per_trial, 1e9 / per_trial,
            {{"p50", t.latency.quantile(0.5)},
             {"p99", t.latency.quantile(0.99)},
             {"p999", t.latency.quantile(0.999)},
             {"goodput_per_trial", r1.cells[0].mean_goodput()},
             {"shed", static_cast<double>(t.shed)},
             {"timed_out", static_cast<double>(t.timed_out)}});
    std::printf("%-22s %12.0f %9.2f %9.2f %9.2f %10.2f %8llu %8llu\n", pc.tag,
                per_trial, t.latency.quantile(0.5), t.latency.quantile(0.99),
                t.latency.quantile(0.999), r1.cells[0].mean_goodput(),
                static_cast<unsigned long long>(t.shed),
                static_cast<unsigned long long>(t.timed_out));
  }

  // Probe-horizon control: overload plane off, standard attack on.
  {
    const std::vector<CampaignCell> cells = {
        {model::SystemKind::S1, probe_only_plan()}};
    cfg.threads = 1;
    cfg.trials_per_cell = 32;
    CampaignResult r;
    const double sec = timed([&] { r = run_campaign(cells, cfg); });
    const double per_trial =
        sec * 1e9 / static_cast<double>(cfg.trials_per_cell);
    rec.add("overload_probe_only", per_trial, 1e9 / per_trial);
    std::printf("%-22s %12.0f  (service queue + traffic disabled; %llu "
                "events)\n",
                "overload_probe_only", per_trial,
                static_cast<unsigned long long>(r.total_events));
  }

  rule(96);
  std::printf("determinism (1 vs 4 threads): %s\n", pass(deterministic));
  if (!rec.write_json(out_path)) return 1;
  std::printf("wrote %s\n", out_path.c_str());
  return deterministic ? 0 : 1;
}
