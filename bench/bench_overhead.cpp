// bench_overhead — E8: request latency and throughput with and without the
// proxy tier, on the live stack.
//
// §2.2 cites Saidane et al. [9]: "the overhead due to proxies is minimal
// when intrusions are not suspected". We measure client-observed request
// latency and completed-request throughput for S1 (direct) vs S2 (through
// proxies) vs S0 (SMR with f+1 vote collection), no attacker present.
// Expectation: S2 adds roughly two network hops (proxy in, proxy out);
// SMR's ordering round costs more.
#include <cstdio>
#include <memory>

#include "core/live_system.hpp"
#include "replication/service.hpp"

using namespace fortress;

namespace {

struct Load {
  double mean_latency = 0.0;
  std::uint64_t completed = 0;
  double duration = 0.0;

  double throughput() const {
    return duration > 0 ? static_cast<double>(completed) / duration : 0.0;
  }
};

template <typename System>
Load drive(sim::Simulator& sim, System& system, int requests) {
  core::ClientConfig ccfg;
  ccfg.address = "load-client";
  core::Client client(sim, system.network(), system.registry(),
                      system.directory(), ccfg);
  double start = sim.now();
  int done = 0;
  // Closed-loop client: next request on completion of the previous one.
  std::function<void(int)> issue = [&](int i) {
    if (i >= requests) return;
    client.submit(bytes_of("PUT key" + std::to_string(i) + " v"),
                  [&, i](std::uint64_t, const Bytes&) {
                    ++done;
                    issue(i + 1);
                  });
  };
  issue(0);
  double deadline = sim.now() + 100.0 * requests;
  while (done < requests && sim.now() < deadline) {
    sim.run_until(sim.now() + 10.0);
  }
  Load out;
  out.mean_latency = client.mean_latency();
  out.completed = client.stats().completed;
  out.duration = sim.now() - start;
  return out;
}

core::LiveConfig quiet_config() {
  core::LiveConfig cfg;
  cfg.keyspace = 1 << 16;
  cfg.policy = osl::ObfuscationPolicy::Rerandomize;
  cfg.step_duration = 10000.0;  // no reboot during the measurement window
  cfg.latency = net::LatencySpec::uniform(0.4, 0.6);  // ~0.5 per hop
  cfg.seed = 3;
  return cfg;
}

}  // namespace

int main() {
  constexpr int kRequests = 300;

  sim::Simulator sim1;
  core::LiveS1 s1(sim1, quiet_config(), [](std::uint32_t) {
    return std::make_unique<replication::KvService>();
  });
  s1.start();
  Load l1 = drive(sim1, s1, kRequests);

  sim::Simulator sim2;
  core::LiveS2 s2(sim2, quiet_config(), [](std::uint32_t) {
    return std::make_unique<replication::KvService>();
  });
  s2.start();
  sim2.run_until(5.0);
  Load l2 = drive(sim2, s2, kRequests);

  sim::Simulator sim0;
  core::LiveS0 s0(sim0, quiet_config(), [](std::uint32_t) {
    return std::make_unique<replication::KvService>();
  });
  s0.start();
  Load l0 = drive(sim0, s0, kRequests);

  std::printf("E8: proxy-tier overhead, no attack in progress "
              "(%d closed-loop requests, ~0.5 time units per hop)\n\n",
              kRequests);
  std::printf("%22s %12s %12s %14s\n", "system", "completed", "latency",
              "throughput");
  for (int i = 0; i < 64; ++i) std::putchar('-');
  std::putchar('\n');
  std::printf("%22s %12llu %12.2f %14.4f\n", "S1 (PB, direct)",
              static_cast<unsigned long long>(l1.completed), l1.mean_latency,
              l1.throughput());
  std::printf("%22s %12llu %12.2f %14.4f\n", "S2 (FORTRESS, proxied)",
              static_cast<unsigned long long>(l2.completed), l2.mean_latency,
              l2.throughput());
  std::printf("%22s %12llu %12.2f %14.4f\n", "S0 (SMR, f+1 votes)",
              static_cast<unsigned long long>(l0.completed), l0.mean_latency,
              l0.throughput());
  for (int i = 0; i < 64; ++i) std::putchar('-');
  std::putchar('\n');

  double proxy_overhead = l2.mean_latency - l1.mean_latency;
  std::printf("\nProxy-tier latency overhead: %.2f time units (~%.1f hops at "
              "0.5/hop)\n", proxy_overhead, proxy_overhead / 0.5);
  bool all_completed = l1.completed == kRequests &&
                       l2.completed == kRequests && l0.completed == kRequests;
  bool modest = proxy_overhead > 0.0 && proxy_overhead < 4.0 * 0.5 + 0.5;
  std::printf("All workloads completed:                      %s\n",
              all_completed ? "PASS" : "FAIL");
  std::printf("Proxy overhead is a small constant (few hops): %s\n",
              modest ? "PASS" : "FAIL");
  return (all_completed && modest) ? 0 : 1;
}
