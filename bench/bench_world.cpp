// bench_world — simulator-core and population-plane scale bench.
//
// Two question sets, both feeding the "million-host worlds" acceptance:
//
//  1. Raw scheduler throughput (events/s) for the hierarchical timer wheel
//     vs the binary-heap reference, on a campaign-like delay mix, at small
//     (campaign-today) and large (population-scale) pending-event counts.
//     The heap's O(log n) push/pop degrades with pending count; the wheel
//     must stay flat.
//
//  2. Population-plane cost: ns per client-tick and events/s for compact
//     ClientPopulation trials at 10^3 / 10^4 / 10^5 clients under the
//     wheel scheduler (one wheel timer per cohort, batched per-tier
//     delivery). Run via scenario::run_trial so the numbers include the
//     full S2 service stack the clients talk to.
//
// Writes BenchRecorder JSON (world_sched_*, world_pop_*) to argv[1]
// (default BENCH_world.json); wired into the `bench` and `bench_diff`
// targets, so scheduler or population regressions >15% fail like any other
// bench.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "scenario/campaign.hpp"
#include "sim/simulator.hpp"

using namespace fortress;
using namespace fortress::bench;

namespace {

// Self-perpetuating event storm with a campaign-like delay mix: mostly
// short "delivery" latencies, some "service/heartbeat" timers, a tail of
// long "step/fault" timers; a slice of events also arm-and-cancel a retry
// timer (the client pattern that exercises cancel()).
struct StormStats {
  std::uint64_t events = 0;
};

std::uint64_t run_storm(sim::SchedulerKind kind, int chains,
                        std::uint64_t horizon_events, std::uint64_t seed,
                        double* checksum) {
  sim::Simulator sim(kind);
  Rng rng(seed);
  StormStats stats;
  double acc = 0.0;

  struct Chain {
    sim::Simulator* sim;
    Rng* rng;
    StormStats* stats;
    std::uint64_t budget;
    double* acc;
    sim::EventId retry = 0;

    void fire() {
      ++stats->events;
      *acc += sim->now();
      if (stats->events >= budget) return;
      const double u = rng->uniform01();
      double delay;
      if (u < 0.80) {
        delay = 0.01 + 0.01 * rng->uniform01();  // delivery latency
      } else if (u < 0.95) {
        delay = 0.5 + 1.0 * rng->uniform01();  // service/heartbeat period
      } else {
        delay = 5.0 + 45.0 * rng->uniform01();  // step/fault horizon
      }
      if (retry != 0) {
        sim->cancel(retry);
        retry = 0;
      }
      if (u < 0.25) {
        // Arm a retry that a future fire() cancels (client completion).
        retry = sim->schedule_after(delay * 8.0, [] {});
      }
      Chain* self = this;
      sim->schedule_after(delay, [self] { self->fire(); });
    }
  };

  std::vector<Chain> chain_storage(static_cast<std::size_t>(chains));
  for (int i = 0; i < chains; ++i) {
    chain_storage[static_cast<std::size_t>(i)] =
        Chain{&sim, &rng, &stats, horizon_events, &acc, 0};
    Chain* self = &chain_storage[static_cast<std::size_t>(i)];
    sim.schedule_after(0.001 * (i + 1), [self] { self->fire(); });
  }
  sim.run();
  *checksum += acc;
  return stats.events;
}

void bench_sched(BenchRecorder& rec, const char* label, int chains,
                 std::uint64_t events_per_rep) {
  double checksum_wheel = 0.0;
  double checksum_heap = 0.0;
  for (sim::SchedulerKind kind :
       {sim::SchedulerKind::Wheel, sim::SchedulerKind::Heap}) {
    double* checksum =
        kind == sim::SchedulerKind::Wheel ? &checksum_wheel : &checksum_heap;
    const int reps = 3;
    std::uint64_t total_events = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
      total_events += run_storm(kind, chains, events_per_rep,
                                0x5EEDULL + static_cast<std::uint64_t>(r),
                                checksum);
    }
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double ns_per_event = sec * 1e9 / static_cast<double>(total_events);
    const double events_per_sec = static_cast<double>(total_events) / sec;
    std::printf("  %-28s %-6s %9.1f ns/event %12.0f events/s\n", label,
                to_string(kind), ns_per_event, events_per_sec);
    rec.add(std::string("world_sched_") + label + "_" + to_string(kind),
            ns_per_event, events_per_sec);
  }
  // Identical virtual-time trajectories under both schedulers.
  if (checksum_wheel != checksum_heap) {
    std::fprintf(stderr,
                 "FAIL: wheel/heap trajectory checksums differ (%a vs %a)\n",
                 checksum_wheel, checksum_heap);
    std::exit(1);
  }
}

// Full population trial through scenario::run_trial: N compact clients
// against a fortified (S2) deployment, wheel scheduler. ns_per_op is the
// cost of one client-tick (one row visit of the SoA scan: clients x
// horizon / tick_interval), items_per_sec is simulator events/s for the
// whole trial — both must stay flat-per-client as N grows.
void bench_pop(BenchRecorder& rec, const char* label, std::uint64_t clients,
               double rate, std::uint64_t horizon_steps) {
  net::ScenarioPlan plan;
  plan.name = label;
  plan.latency = net::LatencySpec::uniform(0.05, 0.2);
  plan.attack.enabled = false;
  plan.horizon_steps = horizon_steps;
  plan.population.clients = clients;
  plan.population.request_rate = rate;

  const double horizon =
      static_cast<double>(horizon_steps) * plan.step_duration;
  const double client_ticks = static_cast<double>(clients) * horizon /
                              plan.population.tick_interval;

  const int reps = 3;
  std::uint64_t total_events = 0;
  std::uint64_t completed = 0;
  auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    scenario::TrialOutcome out = scenario::run_trial(
        model::SystemKind::S2, plan, 0xB0B5ULL + static_cast<std::uint64_t>(r),
        sim::SchedulerKind::Wheel);
    total_events += out.events_executed;
    completed += out.population.completed;
  }
  const double sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double ns_per_client_tick =
      sec * 1e9 / (client_ticks * static_cast<double>(reps));
  const double events_per_sec = static_cast<double>(total_events) / sec;
  std::printf(
      "  %-16s %9.2f ns/client-tick %12.0f events/s (%llu completed)\n", label,
      ns_per_client_tick, events_per_sec,
      static_cast<unsigned long long>(completed));
  rec.add(std::string("world_pop_") + label, ns_per_client_tick,
          events_per_sec);
}

}  // namespace

int main(int argc, char** argv) {
  BenchRecorder rec;

  std::printf("Scheduler storm (campaign-like delay mix):\n");
  bench_sched(rec, "storm_256", 256, 400000);
  bench_sched(rec, "storm_100k", 100000, 2000000);

  std::printf("Population plane (S2 deployment, wheel scheduler):\n");
  bench_pop(rec, "1k", 1'000, 0.002, 10);
  bench_pop(rec, "10k", 10'000, 0.001, 4);
  bench_pop(rec, "100k", 100'000, 0.0003, 1);

  const std::string out = argc > 1 ? argv[1] : "BENCH_world.json";
  if (!rec.write_json(out)) return 1;
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
