// bench_codec — what decoding one protocol message costs, at the three
// depths a handler can choose from:
//
//  * BM_MessageHeaderPeek — MessageView::peek: magic + fixed header only
//    (the cheapest route/drop decision);
//  * BM_MessageViewDecode — MessageView::decode: full structural validation
//    with every field borrowed from the wire (what every protocol handler
//    now dispatches on);
//  * BM_MessageFullDecode — Message::decode: the legacy owning decoder that
//    heap-materializes request_id/requester/payload/aux (+ signature), kept
//    for retention paths and as the differential-fuzz reference.
//
// The workload is a signed StateUpdate-sized record (the universal record
// with every field populated — the shape replicas exchange). Writes
// BenchRecorder JSON (default BENCH_codec.json, argv[1] overrides); the
// `bench_diff` CMake target gates these entries against bench/baseline.json.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "replication/message.hpp"

using namespace fortress;
using namespace fortress::bench;

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_codec.json";
  BenchRecorder recorder;

  crypto::KeyRegistry registry(7);
  crypto::SigningKey key = registry.enroll("s1-server-0");
  replication::Message msg;
  msg.type = replication::MsgType::StateUpdate;
  msg.view = 3;
  msg.seq = 1234;
  msg.sender_index = 0;
  msg.request_id = {"client-17", 42};
  msg.requester = "s2-proxy-1";
  msg.payload = bytes_of("VALUE some-kv-response-body");
  msg.aux = Bytes(96, 0xa5);  // snapshot-ish blob
  replication::sign_message(msg, key);
  const Bytes wire = msg.encode();

  constexpr int kBatch = 10000;
  // Sink the decoded bits so the optimizer cannot drop the decode.
  std::uint64_t sink = 0;

  const double peek_ns =
      recorder.time_and_add("codec_header_peek", /*iters=*/2000,
                            static_cast<double>(kBatch), [&] {
                              for (int i = 0; i < kBatch; ++i) {
                                auto h = replication::MessageView::peek(wire);
                                sink += static_cast<std::uint64_t>(h->type) +
                                        h->seq;
                              }
                            }) /
      kBatch;

  const double view_ns =
      recorder.time_and_add("codec_view_decode", /*iters=*/500,
                            static_cast<double>(kBatch), [&] {
                              for (int i = 0; i < kBatch; ++i) {
                                auto v = replication::MessageView::decode(wire);
                                sink += v->payload().size() +
                                        v->request_client().size();
                              }
                            }) /
      kBatch;

  const double full_ns =
      recorder.time_and_add("codec_full_decode", /*iters=*/500,
                            static_cast<double>(kBatch), [&] {
                              for (int i = 0; i < kBatch; ++i) {
                                auto m = replication::Message::decode(wire);
                                sink += m->payload.size() +
                                        m->request_id.client.size();
                              }
                            }) /
      kBatch;

  std::printf("BM_MessageHeaderPeek  %8.1f ns/msg\n", peek_ns);
  std::printf("BM_MessageViewDecode  %8.1f ns/msg\n", view_ns);
  std::printf("BM_MessageFullDecode  %8.1f ns/msg\n", full_ns);
  std::printf("view-vs-full speedup: %.2fx (sink %llu)\n",
              view_ns > 0 ? full_ns / view_ns : 0.0,
              static_cast<unsigned long long>(sink));

  recorder.write_json(out_path);
  return 0;
}
