// bench_trends — verifies the four headline §6 trends across the full §5
// parameter range, with the methods the paper uses (closed forms, Markov
// chains, Monte-Carlo for S2SO).
//
//   Trend 1: S1SO outlives S0SO.
//   Trend 2: S2PO and S1PO outlive all SO systems.
//   Trend 3: S2PO outlives S1PO when kappa <= 0.9.
//   Trend 4: S0PO outlives S2PO except when kappa = 0.
// Summary chain: S0PO --(k>0)--> S2PO --(k<=0.9)--> S1PO -> S1SO -> S0SO.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "model/step_model.hpp"

using namespace fortress;
using namespace fortress::bench;

int main() {
  const std::vector<double> alphas = {1e-5, 1e-4, 1e-3, 1e-2};
  const std::vector<double> kappas = {0.0, 0.1, 0.3, 0.5, 0.7, 0.9};

  bool t1 = true, t2 = true, t3 = true, t4 = true;

  std::printf("Trend verification over alpha in [1e-5, 1e-2] "
              "(chi = 2^16)\n\n");
  std::printf("%10s %12s %12s %12s %12s %12s | %6s %6s\n", "alpha", "S0SO",
              "S1SO", "S2SO(k=.5)", "S1PO", "S0PO", "T1", "T2");
  rule(100);
  for (double alpha : alphas) {
    model::AttackParams p;
    p.alpha = alpha;
    p.kappa = 0.5;
    p.chi = 1ull << 16;
    double s0so = evaluate_el(shape_of(model::SystemKind::S0), p,
                              model::Obfuscation::StartupOnly).el;
    double s1so = evaluate_el(shape_of(model::SystemKind::S1), p,
                              model::Obfuscation::StartupOnly).el;
    double s2so = evaluate_el(shape_of(model::SystemKind::S2), p,
                              model::Obfuscation::StartupOnly).el;
    double s1po = evaluate_el(shape_of(model::SystemKind::S1), p,
                              model::Obfuscation::Proactive).el;
    double s0po = evaluate_el(shape_of(model::SystemKind::S0), p,
                              model::Obfuscation::Proactive).el;

    bool t1_here = s1so > s0so;
    t1 = t1 && t1_here;

    // Trend 2 for every kappa: S2PO and S1PO beat every SO system.
    bool t2_here = true;
    double max_so = std::max({s0so, s1so, s2so});
    if (s1po <= max_so) t2_here = false;
    for (double kappa : kappas) {
      model::AttackParams pk = p;
      pk.kappa = kappa;
      double s2po = model::expected_lifetime_po(model::SystemShape::s2(), pk);
      if (s2po <= max_so) t2_here = false;
    }
    t2 = t2 && t2_here;

    std::printf("%10.0e %12.4g %12.4g %12.4g %12.4g %12.4g | %6s %6s\n",
                alpha, s0so, s1so, s2so, s1po, s0po, pass(t1_here),
                pass(t2_here));
  }

  std::printf("\n%10s %10s %14s %14s %14s | %6s %6s\n", "alpha", "kappa",
              "S2PO", "S1PO", "S0PO", "T3", "T4");
  rule(96);
  for (double alpha : alphas) {
    for (double kappa : kappas) {
      model::AttackParams p;
      p.alpha = alpha;
      p.kappa = kappa;
      p.chi = 1ull << 16;
      double s2po = model::expected_lifetime_po(model::SystemShape::s2(), p);
      double s1po = model::expected_lifetime_po(model::SystemShape::s1(), p);
      double s0po = model::expected_lifetime_po(model::SystemShape::s0(), p);
      bool t3_here = (kappa > 0.9) || (s2po > s1po);
      bool t4_here = (kappa == 0.0) ? (s2po > s0po) : (s0po > s2po);
      t3 = t3 && t3_here;
      t4 = t4 && t4_here;
      std::printf("%10.0e %10.2f %14.5g %14.5g %14.5g | %6s %6s\n", alpha,
                  kappa, s2po, s1po, s0po, pass(t3_here), pass(t4_here));
    }
  }

  std::printf("\nCrossover kappa* where S2PO = S1PO (paper bound: > 0.9):\n");
  for (double alpha : alphas) {
    model::AttackParams p;
    p.alpha = alpha;
    p.chi = 1ull << 16;
    std::printf("  alpha=%8.0e  kappa* = %.4f\n", alpha,
                model::s2_vs_s1_kappa_crossover(p));
  }

  std::printf("\nTrend 1 (S1SO -> S0SO):                    %s\n", pass(t1));
  std::printf("Trend 2 (S2PO, S1PO -> all SO):            %s\n", pass(t2));
  std::printf("Trend 3 (S2PO -> S1PO for kappa <= 0.9):   %s\n", pass(t3));
  std::printf("Trend 4 (S0PO -> S2PO except kappa = 0):   %s\n", pass(t4));
  bool all = t1 && t2 && t3 && t4;
  std::printf("Summary chain: %s\n", pass(all));
  return all ? 0 : 1;
}
