// bench_crossvalidate — E9: the live protocol-level simulation against the
// abstract probability model.
//
// The paper's evaluation lives entirely in the (α, κ, χ) model. Our live
// stack implements the MECHANISMS (probes, forking daemons, connection
// side-channels, proxies, re-randomization), so the two layers can check
// each other: we run the live S1 system under a direct attacker with
// ω probes/step against keyspace χ (=> α ≈ 1-(1-1/χ)^ω per §4) and compare
// mean live lifetimes with the model's closed form; likewise S1 under SO.
//
// The keyspace is kept small (live probing is event-expensive) — the model
// is scale-free in ω/χ so this exercises the same regime.
#include <cstdio>
#include <memory>

#include "attack/derand_attacker.hpp"
#include "core/live_system.hpp"
#include "model/step_model.hpp"
#include "replication/service.hpp"

using namespace fortress;

namespace {

double live_s1_lifetime(osl::ObfuscationPolicy policy, std::uint64_t chi,
                        double omega, std::uint64_t seed,
                        std::uint64_t max_steps) {
  sim::Simulator sim;
  core::LiveConfig cfg;
  cfg.keyspace = chi;
  cfg.policy = policy;
  cfg.step_duration = 100.0;
  cfg.latency = net::LatencySpec::uniform(0.01, 0.02);
  cfg.seed = seed;
  core::LiveS1 system(sim, cfg, [](std::uint32_t) {
    return std::make_unique<replication::KvService>();
  });
  system.start();

  attack::AttackerConfig acfg;
  acfg.keyspace = chi;
  acfg.step_duration = cfg.step_duration;
  acfg.probes_per_step = omega;
  acfg.indirect_probes_per_step = 0.0;
  acfg.seed = seed * 7919 + 13;
  attack::DerandAttacker attacker(sim, system.network(), acfg);
  // The attacker probes the primary's address: with a shared tier key that
  // is the one channel that matters (Definition 2 discussion).
  attacker.add_direct_target(system.server_machine(0));
  attacker.start();

  sim.run_until(cfg.step_duration * static_cast<double>(max_steps));
  return static_cast<double>(system.failure_step().value_or(max_steps));
}

}  // namespace

int main() {
  const std::uint64_t chi = 128;
  const double omega = 8.0;
  constexpr int kTrials = 60;
  const std::uint64_t max_steps = 400;

  // Model alpha for one channel probed omega times per step.
  model::AttackParams p;
  p.chi = chi;
  p.alpha = omega / static_cast<double>(chi);

  std::printf("E9: live protocol simulation vs abstract model (S1, one "
              "direct channel)\n");
  std::printf("chi = %llu, omega = %.0f probes/step, %d live trials\n\n",
              static_cast<unsigned long long>(chi), omega, kTrials);

  // --- proactive obfuscation ---
  double live_po = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    live_po += live_s1_lifetime(osl::ObfuscationPolicy::Rerandomize, chi,
                                omega, 1000 + static_cast<std::uint64_t>(t),
                                max_steps);
  }
  live_po /= kTrials;
  double model_po = model::expected_lifetime_po(model::SystemShape::s1(), p);

  // --- startup-only obfuscation (proactive recovery) ---
  double live_so = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    live_so += live_s1_lifetime(osl::ObfuscationPolicy::Recover, chi, omega,
                                2000 + static_cast<std::uint64_t>(t),
                                max_steps);
  }
  live_so /= kTrials;
  double model_so = model::expected_lifetime_s1_so(p);

  std::printf("%12s %16s %16s %12s\n", "policy", "live EL (mean)",
              "model EL", "ratio");
  for (int i = 0; i < 60; ++i) std::putchar('-');
  std::putchar('\n');
  std::printf("%12s %16.2f %16.2f %12.2f\n", "PO", live_po, model_po,
              live_po / model_po);
  std::printf("%12s %16.2f %16.2f %12.2f\n", "SO", live_so, model_so,
              live_so / model_so);
  for (int i = 0; i < 60; ++i) std::putchar('-');
  std::putchar('\n');

  // Agreement within Monte-Carlo noise (60 geometric samples have stderr
  // ~ EL/sqrt(60) ~ 13%); accept 35% to keep the bench robust.
  bool po_ok = live_po / model_po > 0.65 && live_po / model_po < 1.45;
  bool so_ok = live_so / model_so > 0.65 && live_so / model_so < 1.45;
  std::printf("\nLive PO lifetime matches model:  %s\n",
              po_ok ? "PASS" : "FAIL");
  std::printf("Live SO lifetime matches model:  %s\n",
              so_ok ? "PASS" : "FAIL");
  std::printf("Live PO > live SO (Trend 2 mechanism, live): %s\n",
              live_po > live_so ? "PASS" : "FAIL");
  return (po_ok && so_ok && live_po > live_so) ? 0 : 1;
}
