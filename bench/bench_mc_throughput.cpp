// bench_mc_throughput — Monte-Carlo trials/sec and Markov-solve latency for
// the perf trajectory. Writes BENCH_results.json (see bench_util.hpp) so the
// numbers are machine-readable across PRs.
//
// Measured here rather than in bench_micro because the thread-count sweep
// and the trials/sec framing (items/sec, not ns/op) fit the BenchRecorder
// schema directly.
#include <cstdio>
#include <string>
#include <utility>

#include "analysis/markov.hpp"
#include "bench_util.hpp"
#include "model/params.hpp"
#include "montecarlo/engine.hpp"

int main(int argc, char** argv) {
  using namespace fortress;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_results.json";
  bench::BenchRecorder rec;

  model::AttackParams p;
  p.alpha = 1e-3;
  p.kappa = 0.5;

  // Monte-Carlo trials/sec: S2 PO at both granularities, thread sweep.
  const std::uint64_t trials = 200000;
  for (auto [gran, label] :
       {std::pair{model::Granularity::Step, "step"},
        std::pair{model::Granularity::Probe, "probe"}}) {
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
      montecarlo::McConfig cfg;
      cfg.trials = trials;
      cfg.seed = 7;
      cfg.threads = threads;
      cfg.max_steps = 1ull << 40;
      double el = 0.0;
      rec.time_and_add(
          "mc_s2po_" + std::string(label) + "_t" + std::to_string(threads),
          /*iters=*/3, /*items_per_op=*/static_cast<double>(trials), [&] {
            el = montecarlo::estimate_lifetime(
                     model::SystemShape::s2(), p, model::Obfuscation::Proactive,
                     gran, cfg)
                     .expected_lifetime();
          });
      std::printf("mc_s2po_%s_t%u: el=%.2f\n", label, threads, el);
    }
  }

  // Structure-aware Markov chain solve across re-randomization periods.
  for (std::uint32_t period : {1u, 16u, 128u}) {
    model::AttackParams mp = p;
    mp.period = period;
    double el = 0.0;
    rec.time_and_add("markov_solve_p" + std::to_string(period),
                     /*iters=*/period >= 128 ? 2000 : 20000,
                     /*items_per_op=*/1.0, [&] {
                       el = analysis::expected_lifetime_markov(
                           model::SystemShape::s2(), mp);
                     });
    std::printf("markov_solve_p%u: el=%.2f\n", period, el);
  }

  if (!rec.write_json(out_path)) return 1;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
