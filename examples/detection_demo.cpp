// detection_demo — the §2.2 story, live: proxies log invalid requests and
// correlate server child crashes with the sources whose requests they
// forwarded; an attacker pacing probes too fast gets blacklisted while an
// honest client sharing the system is never harmed.
//
//   $ ./detection_demo
#include <cstdio>
#include <memory>

#include "attack/derand_attacker.hpp"
#include "core/live_system.hpp"
#include "replication/service.hpp"

using namespace fortress;

int main() {
  sim::Simulator sim;
  core::LiveConfig cfg;
  cfg.keyspace = 1ull << 16;
  cfg.policy = osl::ObfuscationPolicy::Rerandomize;
  cfg.step_duration = 100.0;
  cfg.proxy_blacklist = true;
  cfg.detection.threshold = 5;
  cfg.detection.window = 500.0;
  cfg.seed = 99;

  core::LiveS2 fortress(sim, cfg, [](std::uint32_t) {
    return std::make_unique<replication::KvService>();
  });
  fortress.start();
  sim.run_until(5.0);

  // An honest client issuing a steady trickle of real requests.
  core::Client honest(sim, fortress.network(), fortress.registry(),
                      fortress.directory(), core::ClientConfig{"honest"});
  std::uint64_t honest_ok = 0;
  sim::PeriodicTimer workload(sim, 40.0, [&] {
    honest.submit(bytes_of("PUT x 1"),
                  [&](std::uint64_t, const Bytes&) { ++honest_ok; });
  });
  workload.start();

  // The de-randomization attacker probing the hidden server tier through
  // the proxies at 10 crafted requests per step.
  attack::AttackerConfig acfg;
  acfg.keyspace = cfg.keyspace;
  acfg.step_duration = cfg.step_duration;
  acfg.probes_per_step = 0.001;  // direct channel idle for this demo
  acfg.indirect_probes_per_step = 10.0;
  attack::DerandAttacker attacker(sim, fortress.network(), acfg);
  attacker.set_indirect_channel(fortress.directory().proxies);
  attacker.start();

  std::printf("Proxy detection timeline (threshold: %u suspicious events in "
              "a %.0f-unit window)\n\n", cfg.detection.threshold,
              cfg.detection.window);
  std::printf("%8s %16s %18s %14s %12s\n", "time", "attacker probes",
              "crashes observed", "blacklisted by", "honest OKs");
  for (int i = 0; i < 74; ++i) std::putchar('-');
  std::putchar('\n');

  for (int checkpoint = 1; checkpoint <= 8; ++checkpoint) {
    sim.run_until(checkpoint * 100.0);
    std::uint64_t crashes = 0;
    int blacklisting = 0;
    for (int i = 0; i < fortress.n_proxies(); ++i) {
      crashes += fortress.proxy(i).stats().server_crashes_observed;
      if (fortress.proxy(i).blacklisted("attacker")) ++blacklisting;
    }
    std::printf("%8.0f %16llu %18llu %11d/%d %12llu\n", sim.now(),
                static_cast<unsigned long long>(attacker.stats().indirect_probes),
                static_cast<unsigned long long>(crashes), blacklisting,
                fortress.n_proxies(),
                static_cast<unsigned long long>(honest_ok));
  }
  for (int i = 0; i < 74; ++i) std::putchar('-');
  std::putchar('\n');

  bool honest_clean = true;
  for (int i = 0; i < fortress.n_proxies(); ++i) {
    if (fortress.proxy(i).blacklisted("honest")) honest_clean = false;
  }
  std::printf("\nAttacker shut out by all proxies; honest client never "
              "flagged: %s\n",
              honest_clean ? "yes" : "NO (bug!)");
  std::printf("System compromised: %s\n", fortress.failed() ? "YES" : "no");
  std::printf("\nThis forced rate-reduction is what Definition 5 abstracts "
              "as the indirect attack coefficient kappa < 1.\n");
  workload.stop();
  return honest_clean ? 0 : 1;
}
