// resilience_study — CLI for the paper's evaluation machinery: compute the
// expected lifetime of any system class under any policy, with both the
// analytic engines (closed forms / absorbing Markov chains) and Monte-Carlo.
//
//   $ ./resilience_study [system] [policy] [alpha] [kappa] [log2chi] [period]
//
//   system : s0 | s1 | s2          (default s2)
//   policy : so | po               (default po)
//   alpha  : direct success prob   (default 1e-3)
//   kappa  : indirect coefficient  (default 0.5)
//   log2chi: key entropy bits      (default 16)
//   period : re-randomization P    (default 1; po only)
//
// With no arguments it prints the full comparison matrix at the defaults,
// followed by a live campaign cross-check: the abstract model's EL against
// mean lifetimes measured on the full protocol stack (simulated machines,
// probes, proxies, re-randomization) via scenario::run_campaign.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/evaluator.hpp"
#include "analysis/markov.hpp"
#include "montecarlo/engine.hpp"
#include "scenario/campaign.hpp"

using namespace fortress;

namespace {

void evaluate_one(model::SystemKind kind, model::Obfuscation obf,
                  const model::AttackParams& params) {
  model::SystemShape shape = kind == model::SystemKind::S0
                                 ? model::SystemShape::s0()
                             : kind == model::SystemKind::S1
                                 ? model::SystemShape::s1()
                                 : model::SystemShape::s2();

  std::printf("%-6s", model::system_label(kind, obf).c_str());

  if (auto analytic = analysis::analytic_lifetime(shape, params, obf)) {
    std::printf("  %14.6g  (%s)", analytic->expected_lifetime,
                analysis::to_string(analytic->method));
  } else {
    std::printf("  %14s  %s", "-", "(no closed form)");
  }

  montecarlo::McConfig cfg;
  cfg.trials = 100000;
  cfg.seed = 1234;
  cfg.threads = 4;
  cfg.max_steps = 1ull << 40;
  auto mc = montecarlo::estimate_lifetime(shape, params, obf,
                                          model::Granularity::Step, cfg);
  std::printf("  mc = %12.6g  [%.6g, %.6g] 95%%ci", mc.expected_lifetime(),
              mc.ci.lo, mc.ci.hi);
  if (mc.any_censored()) {
    std::printf("  (%llu censored)",
                static_cast<unsigned long long>(mc.censored));
  }
  // Route attribution for the FORTRESS system.
  if (kind == model::SystemKind::S2) {
    std::printf("\n      routes: indirect %.1f%%, via-proxy %.1f%%, "
                "all-proxies %.1f%%",
                100 * mc.route_fraction(model::CompromiseRoute::ServerIndirect),
                100 * mc.route_fraction(model::CompromiseRoute::ServerViaProxy),
                100 * mc.route_fraction(model::CompromiseRoute::AllProxies));
  }
  std::printf("\n");
}

// Live campaign cross-check: sweep (system x plan) cells on the live stack
// at small keyspaces (live probing is event-expensive; the model is
// scale-free in omega/chi) and compare with the analytic EL at the plan's
// implied alpha = omega/chi.
void live_campaign_section() {
  struct PlanSpec {
    std::uint64_t chi;
    double omega;
    double kappa;
    std::uint64_t horizon;
  };
  const PlanSpec specs[] = {
      {128, 8.0, 0.5, 600}, {256, 8.0, 0.5, 900}, {128, 8.0, 0.25, 900}};

  std::vector<scenario::CampaignCell> cells;
  for (const PlanSpec& s : specs) {
    net::ScenarioPlan plan;
    plan.keyspace = s.chi;
    plan.attack.probes_per_step = s.omega;
    plan.attack.indirect_fraction = s.kappa;
    plan.horizon_steps = s.horizon;
    plan.proxy_blacklist = false;
    plan.latency = net::LatencySpec::uniform(0.01, 0.02);
    char name[64];
    std::snprintf(name, sizeof name, "chi=%llu kappa=%.2f",
                  static_cast<unsigned long long>(s.chi), s.kappa);
    plan.name = name;
    cells.push_back({model::SystemKind::S1, plan});
    cells.push_back({model::SystemKind::S2, plan});
  }

  // Adaptive sampling: rounds of trials flow to the cells whose lifetime
  // CI is still wide; a cell stops once its CI half-width is within
  // target_rel_ci of its mean (or at the cap). The per-cell trial counts
  // below show where the budget actually went.
  scenario::CampaignConfig cfg;
  cfg.base_seed = 2026;
  cfg.adaptive.enabled = true;
  cfg.adaptive.round_trials = 20;
  cfg.adaptive.target_rel_ci = 0.18;
  cfg.adaptive.max_trials_per_cell = 240;
  scenario::CampaignResult result = scenario::run_campaign(cells, cfg);

  std::printf("\nLive campaign cross-check (adaptive: rounds of %llu, stop "
              "at rel-CI %.2f, cap %llu; alpha = omega/chi):\n",
              static_cast<unsigned long long>(cfg.adaptive.round_trials),
              cfg.adaptive.target_rel_ci,
              static_cast<unsigned long long>(
                  cfg.adaptive.max_trials_per_cell));
  std::printf("%20s %6s %7s %7s %12s %22s %12s\n", "plan", "system", "trials",
              "rounds", "live EL", "95% CI", "model EL");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const scenario::CellStats& cell = result.cells[i];
    const net::ScenarioPlan& plan = cells[i].plan;
    model::AttackParams p;
    p.chi = plan.keyspace;
    p.alpha = plan.implied_alpha();
    p.kappa = plan.attack.indirect_fraction;
    model::SystemShape shape = cells[i].system == model::SystemKind::S1
                                   ? model::SystemShape::s1()
                                   : model::SystemShape::s2(plan.n_proxies);
    const double predicted = analysis::expected_lifetime_markov(shape, p);
    std::printf("%20s %6s %7llu %7llu %12.1f [%8.1f, %8.1f] %12.1f\n",
                cell.plan_name.c_str(),
                model::to_string(cell.system).c_str(),
                static_cast<unsigned long long>(cell.trials),
                static_cast<unsigned long long>(cell.rounds),
                cell.mean_lifetime(), cell.lifetime_ci.lo,
                cell.lifetime_ci.hi, predicted);
  }
  std::printf("(%llu total trials; a fixed budget at the cap would spend "
              "%llu)\n",
              static_cast<unsigned long long>(result.total_trials),
              static_cast<unsigned long long>(
                  cfg.adaptive.max_trials_per_cell * cells.size()));
}

}  // namespace

int main(int argc, char** argv) {
  model::AttackParams params;
  params.alpha = 1e-3;
  params.kappa = 0.5;
  params.chi = 1ull << 16;

  if (argc >= 4) params.alpha = std::atof(argv[3]);
  if (argc >= 5) params.kappa = std::atof(argv[4]);
  if (argc >= 6) params.chi = 1ull << std::atoi(argv[5]);
  if (argc >= 7) params.period = static_cast<std::uint32_t>(std::atoi(argv[6]));

  std::printf("FORTRESS resilience study: alpha=%g kappa=%g chi=2^%d "
              "period=%u\n",
              params.alpha, params.kappa,
              static_cast<int>(std::log2(static_cast<double>(params.chi))),
              params.period);
  std::printf("EL = expected whole unit time-steps before compromise\n\n");

  if (argc >= 3) {
    std::string sys = argv[1];
    std::string pol = argv[2];
    model::SystemKind kind = sys == "s0"   ? model::SystemKind::S0
                             : sys == "s1" ? model::SystemKind::S1
                                           : model::SystemKind::S2;
    model::Obfuscation obf = pol == "so" ? model::Obfuscation::StartupOnly
                                         : model::Obfuscation::Proactive;
    evaluate_one(kind, obf, params);
    return 0;
  }

  // Full matrix.
  for (auto obf : {model::Obfuscation::StartupOnly,
                   model::Obfuscation::Proactive}) {
    for (auto kind : {model::SystemKind::S0, model::SystemKind::S1,
                      model::SystemKind::S2}) {
      evaluate_one(kind, obf, params);
    }
  }
  live_campaign_section();
  std::printf("\n(run with: %s [s0|s1|s2] [so|po] [alpha] [kappa] [log2chi] "
              "[period] for a single configuration)\n",
              argv[0]);
  return 0;
}
