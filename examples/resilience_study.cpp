// resilience_study — CLI for the paper's evaluation machinery: compute the
// expected lifetime of any system class under any policy, with both the
// analytic engines (closed forms / absorbing Markov chains) and Monte-Carlo.
//
//   $ ./resilience_study [system] [policy] [alpha] [kappa] [log2chi] [period]
//
//   system : s0 | s1 | s2          (default s2)
//   policy : so | po               (default po)
//   alpha  : direct success prob   (default 1e-3)
//   kappa  : indirect coefficient  (default 0.5)
//   log2chi: key entropy bits      (default 16)
//   period : re-randomization P    (default 1; po only)
//
// With no arguments it prints the full comparison matrix at the defaults.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/evaluator.hpp"
#include "analysis/markov.hpp"
#include "montecarlo/engine.hpp"

using namespace fortress;

namespace {

void evaluate_one(model::SystemKind kind, model::Obfuscation obf,
                  const model::AttackParams& params) {
  model::SystemShape shape = kind == model::SystemKind::S0
                                 ? model::SystemShape::s0()
                             : kind == model::SystemKind::S1
                                 ? model::SystemShape::s1()
                                 : model::SystemShape::s2();

  std::printf("%-6s", model::system_label(kind, obf).c_str());

  if (auto analytic = analysis::analytic_lifetime(shape, params, obf)) {
    std::printf("  %14.6g  (%s)", analytic->expected_lifetime,
                analysis::to_string(analytic->method));
  } else {
    std::printf("  %14s  %s", "-", "(no closed form)");
  }

  montecarlo::McConfig cfg;
  cfg.trials = 100000;
  cfg.seed = 1234;
  cfg.threads = 4;
  cfg.max_steps = 1ull << 40;
  auto mc = montecarlo::estimate_lifetime(shape, params, obf,
                                          model::Granularity::Step, cfg);
  std::printf("  mc = %12.6g  [%.6g, %.6g] 95%%ci", mc.expected_lifetime(),
              mc.ci.lo, mc.ci.hi);
  if (mc.any_censored()) {
    std::printf("  (%llu censored)",
                static_cast<unsigned long long>(mc.censored));
  }
  // Route attribution for the FORTRESS system.
  if (kind == model::SystemKind::S2) {
    std::printf("\n      routes: indirect %.1f%%, via-proxy %.1f%%, "
                "all-proxies %.1f%%",
                100 * mc.route_fraction(model::CompromiseRoute::ServerIndirect),
                100 * mc.route_fraction(model::CompromiseRoute::ServerViaProxy),
                100 * mc.route_fraction(model::CompromiseRoute::AllProxies));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  model::AttackParams params;
  params.alpha = 1e-3;
  params.kappa = 0.5;
  params.chi = 1ull << 16;

  if (argc >= 4) params.alpha = std::atof(argv[3]);
  if (argc >= 5) params.kappa = std::atof(argv[4]);
  if (argc >= 6) params.chi = 1ull << std::atoi(argv[5]);
  if (argc >= 7) params.period = static_cast<std::uint32_t>(std::atoi(argv[6]));

  std::printf("FORTRESS resilience study: alpha=%g kappa=%g chi=2^%d "
              "period=%u\n",
              params.alpha, params.kappa,
              static_cast<int>(std::log2(static_cast<double>(params.chi))),
              params.period);
  std::printf("EL = expected whole unit time-steps before compromise\n\n");

  if (argc >= 3) {
    std::string sys = argv[1];
    std::string pol = argv[2];
    model::SystemKind kind = sys == "s0"   ? model::SystemKind::S0
                             : sys == "s1" ? model::SystemKind::S1
                                           : model::SystemKind::S2;
    model::Obfuscation obf = pol == "so" ? model::Obfuscation::StartupOnly
                                         : model::Obfuscation::Proactive;
    evaluate_one(kind, obf, params);
    return 0;
  }

  // Full matrix.
  for (auto obf : {model::Obfuscation::StartupOnly,
                   model::Obfuscation::Proactive}) {
    for (auto kind : {model::SystemKind::S0, model::SystemKind::S1,
                      model::SystemKind::S2}) {
      evaluate_one(kind, obf, params);
    }
  }
  std::printf("\n(run with: %s [s0|s1|s2] [so|po] [alpha] [kappa] [log2chi] "
              "[period] for a single configuration)\n",
              argv[0]);
  return 0;
}
