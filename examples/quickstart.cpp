// quickstart — assemble a live FORTRESS (S2) deployment, run a replicated
// key-value workload through the proxy tier, demonstrate double-signature
// validation, non-deterministic service support and primary failover.
//
//   $ ./quickstart
//
// Everything runs on the deterministic discrete-event simulator; "time" is
// virtual. See DESIGN.md for the architecture.
#include <cstdio>
#include <memory>

#include "core/live_system.hpp"
#include "replication/service.hpp"

using namespace fortress;

namespace {

/// Run `cmd` through the client and print the reply (blocking the virtual
/// clock until it arrives).
std::string call(sim::Simulator& sim, core::Client& client,
                 const std::string& cmd) {
  std::string reply = "<no reply>";
  bool done = false;
  client.submit(bytes_of(cmd), [&](std::uint64_t, const Bytes& resp) {
    reply = string_of(resp);
    done = true;
  });
  sim::Time deadline = sim.now() + 200.0;
  while (!done && sim.now() < deadline) sim.run_until(sim.now() + 1.0);
  std::printf("  client> %-24s  ->  %s\n", cmd.c_str(), reply.c_str());
  return reply;
}

}  // namespace

int main() {
  std::printf("FORTRESS quickstart: 3 proxies fronting a 3-replica "
              "primary-backup service\n\n");

  sim::Simulator sim;
  core::LiveConfig config;
  config.keyspace = 1ull << 16;                          // chi = 2^16
  config.policy = osl::ObfuscationPolicy::Rerandomize;   // proactive obfuscation
  config.step_duration = 500.0;                          // unit time-step

  // The replicated service may be non-deterministic: SessionTokenService
  // mints random tokens, which primary-backup replication handles by
  // shipping state (SMR could not re-execute this service).
  core::LiveS2 fortress(sim, config, [](std::uint32_t index) {
    return std::make_unique<replication::SessionTokenService>(7000 + index);
  });
  fortress.start();
  sim.run_until(5.0);  // proxies dial the hidden server tier

  std::printf("Deployment:\n");
  std::printf("  proxies: ");
  for (const auto& p : fortress.directory().proxies) std::printf("%s ", p.c_str());
  std::printf("\n  servers: hidden behind proxies (%zu principals known "
              "to clients)\n",
              fortress.directory().server_principals.size());
  std::printf("  server tier shares one randomization key; proxies have "
              "distinct keys (np+1 = 4 keys live)\n\n");

  core::Client client(sim, fortress.network(), fortress.registry(),
                      fortress.directory(), core::ClientConfig{"client-1"});

  std::printf("Issuing requests through the proxy tier (every reply is "
              "doubly signed: server + proxy):\n");
  std::string minted = call(sim, client, "TOKEN alice");
  std::string token = minted.size() > 6 ? minted.substr(6) : "";
  call(sim, client, "CHECK alice " + token);
  call(sim, client, "TOKEN bob");
  call(sim, client, "GET alice");

  std::printf("\nCrashing the primary server; the backup takes over with "
              "the replicated state:\n");
  fortress.server_machine(0).shutdown();
  sim.run_until(sim.now() + 60.0);  // failure detection + view change
  call(sim, client, "CHECK alice " + token);
  call(sim, client, "TOKEN carol");

  std::printf("\nCrossing a proactive-obfuscation boundary (all nodes "
              "re-randomized):\n");
  sim.run_until(sim.now() + config.step_duration);
  std::printf("  steps completed: %llu\n",
              static_cast<unsigned long long>(fortress.steps_completed()));
  call(sim, client, "CHECK alice " + token);

  std::printf("\nClient stats: %llu submitted, %llu completed, %llu "
              "retries, mean latency %.2f time units\n",
              static_cast<unsigned long long>(client.stats().submitted),
              static_cast<unsigned long long>(client.stats().completed),
              static_cast<unsigned long long>(client.stats().retries),
              client.mean_latency());
  std::printf("System compromised: %s\n", fortress.failed() ? "YES" : "no");
  return 0;
}
