// partition_study — partition tolerance of S0 (SMR quorum) vs S2 (FORTRESS
// proxies), driven by the committed scenario corpus.
//
//   $ ./partition_study
//
// Two sections:
//  1. replays the committed partition fixtures (scenarios/partition_*.json)
//     exactly as pinned — same seed, same budget — and prints their cell
//     aggregates, so the numbers on screen are the numbers in the corpus;
//  2. sweeps the partition duration upward from zero to show the divergent
//     failure modes: cutting two of four S0 replicas stalls the quorum (the
//     service halts but the keys stay safe), while cutting all S2 proxies
//     severs the indirection tier and leaves the server's direct surface as
//     the only attackable channel.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "scenario/campaign.hpp"
#include "scenario/corpus.hpp"
#include "scenario/plan_codec.hpp"

#ifndef FORTRESS_SCENARIO_DIR
#error "build defines FORTRESS_SCENARIO_DIR (see CMakeLists.txt)"
#endif

using namespace fortress;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void print_cells(const std::vector<scenario::CampaignCell>& cells,
                 const scenario::CampaignResult& result) {
  std::printf("  %-28s %6s %7s %12s %10s %12s\n", "plan", "system",
              "compr.", "censored", "mean EL", "completed/offered");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const scenario::CellStats& c = result.cells[i];
    std::printf("  %-28s %6s %7llu %12llu %10.1f %7llu/%llu\n",
                c.plan_name.c_str(), model::to_string(cells[i].system).c_str(),
                static_cast<unsigned long long>(c.compromised),
                static_cast<unsigned long long>(c.censored),
                c.lifetime.count() > 0 ? c.lifetime.mean() : 0.0,
                static_cast<unsigned long long>(c.traffic.completed),
                static_cast<unsigned long long>(c.traffic.offered));
  }
}

void replay_corpus_entry(const std::string& filename) {
  const std::string path = std::string(FORTRESS_SCENARIO_DIR) + "/" + filename;
  const scenario::CorpusEntry entry =
      scenario::corpus_entry_from_json(slurp(path));
  std::printf("%s — %s\n  digest %s, seed %llu, %llu trials/cell\n",
              entry.name.c_str(), entry.description.c_str(),
              entry.digest.c_str(),
              static_cast<unsigned long long>(entry.base_seed),
              static_cast<unsigned long long>(entry.trials_per_cell));
  std::vector<scenario::CampaignCell> cells;
  for (model::SystemKind s : entry.systems) cells.push_back({s, entry.plan});
  scenario::CampaignConfig cfg;
  cfg.trials_per_cell = entry.trials_per_cell;
  cfg.base_seed = entry.base_seed;
  print_cells(cells, scenario::run_campaign(cells, cfg));
  std::printf("\n");
}

// One sweep point: the same adversarial environment, but the partition
// window's duration is scaled. S0's island cuts 2 of its 4 replicas (no
// quorum on either side); S2's island cuts every proxy away from the
// servers and the outside world.
void sweep_section() {
  const double durations[] = {0.0, 25.0, 100.0, 400.0};
  std::vector<scenario::CampaignCell> cells;
  for (double dur : durations) {
    net::ScenarioPlan base;
    base.keyspace = 256;
    base.attack.probes_per_step = 8.0;
    base.horizon_steps = 12;
    base.step_duration = 50.0;
    base.latency = net::LatencySpec::uniform(0.01, 0.05);
    base.traffic.clients = 2;
    base.traffic.schedule = {{0.0, 1.0}};

    net::ScenarioPlan s0 = base;
    char name[64];
    std::snprintf(name, sizeof name, "s0-quorum-cut dur=%g", dur);
    s0.name = name;
    if (dur > 0.0) {
      s0.partitions.push_back({50.0, 50.0 + dur,
                               {"s0-replica-0", "s0-replica-1"}});
    }
    s0.validate();
    cells.push_back({model::SystemKind::S0, s0});

    net::ScenarioPlan s2 = base;
    std::snprintf(name, sizeof name, "s2-proxy-cut dur=%g", dur);
    s2.name = name;
    s2.n_proxies = 3;
    if (dur > 0.0) {
      s2.partitions.push_back(
          {50.0, 50.0 + dur, {"s2-proxy-0", "s2-proxy-1", "s2-proxy-2"}});
    }
    s2.validate();
    cells.push_back({model::SystemKind::S2, s2});
  }

  scenario::CampaignConfig cfg;
  cfg.trials_per_cell = 8;
  cfg.base_seed = 77;
  std::printf("Partition-duration sweep (window opens at t=50, %llu trials "
              "per cell):\n",
              static_cast<unsigned long long>(cfg.trials_per_cell));
  print_cells(cells, scenario::run_campaign(cells, cfg));
}

}  // namespace

int main() {
  std::printf("FORTRESS partition study\n");
  std::printf("EL = whole unit time-steps before compromise "
              "(censored at the horizon)\n\n");
  try {
    std::printf("== committed corpus fixtures ==\n\n");
    replay_corpus_entry("partition_quorum_loss.json");
    replay_corpus_entry("partition_proxy_islands.json");
  } catch (const std::exception& e) {
    std::printf("corpus replay skipped: %s\n\n", e.what());
  }
  std::printf("== duration sweep ==\n\n");
  sweep_section();
  return 0;
}
