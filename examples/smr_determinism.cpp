// smr_determinism — the paper's §1 motivation, executable.
//
// SMR requires the replicated service to be a deterministic state machine
// (DSM): every replica re-executes every request and correct replicas must
// produce identical results. Primary-backup replication has no such
// requirement: only the primary executes; backups receive state.
//
// This example replicates a NON-deterministic service (random session
// tokens) three ways:
//   1. on primary-backup (S1): works — backups adopt the primary's state;
//   2. on SMR (S0) legitimately: the library REJECTS it at compile time
//      (SmrReplica only accepts DeterministicService);
//   3. on SMR with the determinism claim faked: replicas diverge, the
//      client's f+1 matching-vote rule never completes, and the request
//      times out — the type system was protecting real safety.
//
//   $ ./smr_determinism
#include <cstdio>
#include <memory>

#include "core/live_system.hpp"
#include "replication/service.hpp"

using namespace fortress;

namespace {

/// A wrapper that (falsely) claims SessionTokenService is deterministic —
/// the kind of shortcut §1 warns against when "identifying and handling
/// every source of nondeterminism at each level" is skipped.
class FalselyDeterministicTokenService final
    : public replication::DeterministicService {
 public:
  explicit FalselyDeterministicTokenService(std::uint64_t seed)
      : inner_(seed) {}

  Bytes execute(BytesView request) override { return inner_.execute(request); }
  Bytes snapshot() const override { return inner_.snapshot(); }
  void restore(BytesView snapshot) override { inner_.restore(snapshot); }

 private:
  replication::SessionTokenService inner_;
};

core::LiveConfig config() {
  core::LiveConfig cfg;
  cfg.keyspace = 1 << 12;
  cfg.policy = osl::ObfuscationPolicy::Rerandomize;
  cfg.step_duration = 5000.0;
  cfg.seed = 77;
  return cfg;
}

}  // namespace

int main() {
  std::printf("The DSM requirement, demonstrated (paper §1)\n\n");

  // --- 1. Non-deterministic service on primary-backup: fine. -------------
  {
    sim::Simulator sim;
    core::LiveS1 pb(sim, config(), [](std::uint32_t index) {
      return std::make_unique<replication::SessionTokenService>(100 + index);
    });
    pb.start();
    core::Client client(sim, pb.network(), pb.registry(), pb.directory(),
                        core::ClientConfig{"client"});
    std::string reply;
    client.submit(bytes_of("TOKEN alice"), [&](std::uint64_t, const Bytes& r) {
      reply = string_of(r);
    });
    sim.run_until(100.0);
    std::printf("[1] primary-backup + non-deterministic service:\n");
    std::printf("    TOKEN alice -> %s\n", reply.c_str());
    std::printf("    (backups adopted the primary's state; all three "
                "replicas agree on this token)\n\n");
  }

  // --- 2. The same service on SMR: rejected at compile time. -------------
  std::printf("[2] SMR + non-deterministic service: does not compile.\n");
  std::printf("    SmrReplica's constructor takes "
              "unique_ptr<DeterministicService>;\n"
              "    SessionTokenService is deliberately NOT a "
              "DeterministicService.\n");
  std::printf("    // core::LiveS0 smr(sim, cfg, [](std::uint32_t i) {\n"
              "    //   return std::make_unique<SessionTokenService>(i); "
              "});  <- type error\n\n");

  // --- 3. Faking the determinism claim: divergence, caught by voting. ----
  {
    sim::Simulator sim;
    core::LiveS0 smr(sim, config(), [](std::uint32_t index) {
      // Different per-replica seeds, as different machines would have.
      return std::make_unique<FalselyDeterministicTokenService>(200 + index);
    });
    smr.start();
    core::ClientConfig ccfg;
    ccfg.address = "client";
    ccfg.retry_interval = 30.0;
    ccfg.deadline = 400.0;
    core::Client client(sim, smr.network(), smr.registry(), smr.directory(),
                        ccfg);
    std::string reply = "<pending>";
    bool timed_out = false;
    client.submit(
        bytes_of("TOKEN alice"),
        [&](std::uint64_t, const Bytes& r) { reply = string_of(r); },
        [&](std::uint64_t, core::RequestOutcome) { timed_out = true; });
    sim.run_until(600.0);

    std::printf("[3] SMR with the determinism claim faked:\n");
    std::printf("    all four replicas executed the request and minted "
                "FOUR different tokens;\n");
    std::printf("    the client needs f+1 = 2 MATCHING signed responses "
                "and saw %llu mismatching ones\n",
                static_cast<unsigned long long>(
                    client.stats().rejected_responses));
    std::printf("    result: %s\n",
                timed_out ? "request timed out (no agreement)"
                          : ("UNEXPECTED: " + reply).c_str());
    std::printf("    -> the replicas' states have silently diverged; this "
                "deployment is broken.\n\n");
  }

  // --- 4. A genuinely deterministic service on SMR: fine. ----------------
  {
    sim::Simulator sim;
    core::LiveS0 smr(sim, config(), [](std::uint32_t) {
      return std::make_unique<replication::KvService>();
    });
    smr.start();
    core::Client client(sim, smr.network(), smr.registry(), smr.directory(),
                        core::ClientConfig{"client"});
    std::string reply;
    client.submit(bytes_of("PUT x 1"), [&](std::uint64_t, const Bytes& r) {
      reply = string_of(r);
    });
    sim.run_until(200.0);
    std::printf("[4] SMR + deterministic KV service: PUT x 1 -> %s "
                "(f+1 matching votes collected)\n\n", reply.c_str());
  }

  std::printf("Conclusion: if DSM compliance is costly or infeasible, "
              "FORTRESS (proxies + proactive obfuscation over PB) is the "
              "way to add intrusion resilience — the paper's bottom line "
              "(§7).\n");
  return 0;
}
