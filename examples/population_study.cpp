// population_study — what a realistic client population costs, and what it
// does NOT change.
//
//   $ ./population_study [clients...]     (default: 0 1000 10000 100000)
//
// Two questions, one table each:
//
//  1. Inertness: the paper's lifetime estimates come from small-world
//     campaigns (attacker + a handful of servers/proxies). Does adding a
//     large background population of compact clients change the measured
//     expected lifetime? It must not — the attack plane and the population
//     plane draw from independent RNG substreams, so the campaign section
//     shows the same mean lifetime (same seeds) at every population size,
//     while the population columns (offered/completed/p99) grow with scale.
//
//  2. Cost: wall-clock per trial as the population grows 0 -> 10^5 under
//     the timer-wheel scheduler. The compact SoA plane (<= 64 bytes/client,
//     one timer per cohort, batched per-tier delivery) keeps the per-client
//     increment small enough that million-host worlds are a campaign away,
//     not a rewrite away.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "scenario/campaign.hpp"

using namespace fortress;

namespace {

net::ScenarioPlan study_plan(std::uint64_t clients) {
  net::ScenarioPlan plan;
  plan.name = "population-study";
  plan.keyspace = 256;
  plan.attack.probes_per_step = 8.0;
  plan.attack.indirect_fraction = 0.5;
  plan.horizon_steps = 40;
  plan.latency = net::LatencySpec::uniform(0.02, 0.1);
  plan.population.clients = clients;
  plan.population.request_rate = 0.001;
  plan.population.distinct_keys = 64;
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::uint64_t> sizes;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      sizes.push_back(static_cast<std::uint64_t>(std::atoll(argv[i])));
    }
  } else {
    sizes = {0, 1'000, 10'000, 100'000};
  }

  std::printf("FORTRESS population study (S2, wheel scheduler)\n\n");
  std::printf("%9s %7s %10s %10s %10s %9s %9s %11s\n", "clients", "trials",
              "mean EL", "offered", "completed", "p50 lat", "p99 lat",
              "ms/trial");

  for (std::uint64_t clients : sizes) {
    net::ScenarioPlan plan = study_plan(clients);
    // Large populations: fewer trials, same seeds — the lifetime column
    // stays comparable because trial t always uses trial_seed(base, 0, t).
    const std::uint64_t trials = clients >= 100'000 ? 3 : 8;

    scenario::CampaignConfig cfg;
    cfg.trials_per_cell = trials;
    cfg.base_seed = 7100;
    cfg.threads = 1;
    cfg.scheduler = sim::SchedulerKind::Wheel;
    std::vector<scenario::CampaignCell> cells = {
        {model::SystemKind::S2, plan}};

    auto t0 = std::chrono::steady_clock::now();
    scenario::CampaignResult result = scenario::run_campaign(cells, cfg);
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    const scenario::CellStats& cell = result.cells[0];
    const core::PopulationStats& pop = cell.population;
    char p50[16] = "-";
    char p99[16] = "-";
    if (pop.latency.count() > 0) {
      std::snprintf(p50, sizeof p50, "%.3f", pop.latency.quantile(0.5));
      std::snprintf(p99, sizeof p99, "%.3f", pop.latency.quantile(0.99));
    }
    std::printf("%9llu %7llu %10.2f %10llu %10llu %9s %9s %11.1f\n",
                static_cast<unsigned long long>(clients),
                static_cast<unsigned long long>(cell.trials),
                cell.mean_lifetime(),
                static_cast<unsigned long long>(pop.offered),
                static_cast<unsigned long long>(pop.completed), p50, p99,
                1e3 * sec / static_cast<double>(cell.trials));
  }

  std::printf(
      "\nThe mean-EL column is population-invariant: attack and population\n"
      "planes draw from independent substreams of the same trial seed, so\n"
      "background load never perturbs the lifetime estimate (the dense-plane\n"
      "golden grid pins this bit-exactly).\n");
  return 0;
}
