// derand_attack — watch a de-randomization attacker break a directly
// exposed primary-backup system (S1), then fail against the same servers
// fortified with proxies (S2) under proactive obfuscation.
//
//   $ ./derand_attack
//
// The keyspace is kept small (chi = 512) so the attack timeline fits in a
// short run; all the mechanisms (probe pacing, crash side channel, forking
// daemon, launch pads, re-randomization) are the real ones from the paper.
#include <cstdio>
#include <memory>

#include "attack/derand_attacker.hpp"
#include "core/live_system.hpp"
#include "replication/service.hpp"

using namespace fortress;

namespace {

constexpr std::uint64_t kChi = 512;
constexpr double kStep = 100.0;

core::LiveConfig live_config(osl::ObfuscationPolicy policy) {
  core::LiveConfig cfg;
  cfg.keyspace = kChi;
  cfg.policy = policy;
  cfg.step_duration = kStep;
  cfg.seed = 2026;
  return cfg;
}

core::ServiceFactory kv() {
  return [](std::uint32_t) { return std::make_unique<replication::KvService>(); };
}

void report(const char* label, const core::LiveSystem& system,
            const attack::AttackerStats& stats, std::uint64_t horizon_steps) {
  std::printf("%s\n", label);
  if (system.failure_step()) {
    std::printf("  COMPROMISED during step %llu\n",
                static_cast<unsigned long long>(*system.failure_step()));
  } else {
    std::printf("  survived all %llu steps\n",
                static_cast<unsigned long long>(horizon_steps));
  }
  std::printf("  attacker: %llu direct probes, %llu indirect probes, "
              "%llu crashes observed, %llu nodes compromised, %llu keys "
              "learned\n\n",
              static_cast<unsigned long long>(stats.direct_probes),
              static_cast<unsigned long long>(stats.indirect_probes),
              static_cast<unsigned long long>(stats.crashes_caused),
              static_cast<unsigned long long>(stats.compromises),
              static_cast<unsigned long long>(stats.keys_learned));
}

}  // namespace

int main() {
  constexpr std::uint64_t kHorizon = 100;  // steps per scenario
  constexpr double kOmega = 16.0;          // probes per channel per step
  std::printf("De-randomization attack walkthrough (chi = %llu, omega = %.0f "
              "probes/step, horizon = %llu steps)\n\n",
              static_cast<unsigned long long>(kChi), kOmega,
              static_cast<unsigned long long>(kHorizon));

  // --- Scenario 1: S1 with proactive RECOVERY (startup-only keys) --------
  {
    sim::Simulator sim;
    core::LiveS1 system(sim, live_config(osl::ObfuscationPolicy::Recover),
                        kv());
    system.start();
    attack::AttackerConfig acfg;
    acfg.keyspace = kChi;
    acfg.step_duration = kStep;
    acfg.probes_per_step = kOmega;
    attack::DerandAttacker attacker(sim, system.network(), acfg);
    for (int i = 0; i < system.n_servers(); ++i) {
      attacker.add_direct_target(system.server_machine(i));
    }
    attacker.start();
    sim.run_until(kStep * kHorizon);
    report("[1] S1, proactive recovery (keys fixed at startup):", system,
           attacker.stats(), kHorizon);
  }

  // --- Scenario 2: S1 with proactive OBFUSCATION -------------------------
  {
    sim::Simulator sim;
    core::LiveS1 system(sim, live_config(osl::ObfuscationPolicy::Rerandomize),
                        kv());
    system.start();
    attack::AttackerConfig acfg;
    acfg.keyspace = kChi;
    acfg.step_duration = kStep;
    acfg.probes_per_step = kOmega;
    attack::DerandAttacker attacker(sim, system.network(), acfg);
    for (int i = 0; i < system.n_servers(); ++i) {
      attacker.add_direct_target(system.server_machine(i));
    }
    attacker.start();
    sim.run_until(kStep * kHorizon);
    report("[2] S1, proactive obfuscation (fresh keys every step):", system,
           attacker.stats(), kHorizon);
  }

  // --- Scenario 3: FORTRESS (S2), attacker must go through proxies -------
  {
    sim::Simulator sim;
    auto cfg = live_config(osl::ObfuscationPolicy::Rerandomize);
    cfg.proxy_blacklist = false;  // even without detection, kappa < 1 helps
    core::LiveS2 system(sim, cfg, kv());
    system.start();
    sim.run_until(5.0);
    attack::AttackerConfig acfg;
    acfg.keyspace = kChi;
    acfg.step_duration = kStep;
    acfg.probes_per_step = kOmega;
    acfg.indirect_probes_per_step = kOmega / 4.0;  // kappa = 0.25
    attack::DerandAttacker attacker(sim, system.network(), acfg);
    for (int i = 0; i < system.n_proxies(); ++i) {
      attacker.add_direct_target(system.proxy_machine(i));
      attacker.add_launchpad(system.proxy_machine(i),
                             system.server_addresses());
    }
    attacker.set_indirect_channel(system.directory().proxies);
    attacker.start();
    sim.run_until(kStep * kHorizon);
    report("[3] S2/FORTRESS, proactive obfuscation, kappa = 0.25:", system,
           attacker.stats(), kHorizon);
  }

  // --- Scenario 4: FORTRESS with detection enabled -----------------------
  {
    sim::Simulator sim;
    auto cfg = live_config(osl::ObfuscationPolicy::Rerandomize);
    cfg.proxy_blacklist = true;
    cfg.detection.threshold = 5;
    cfg.detection.window = 500.0;
    core::LiveS2 system(sim, cfg, kv());
    system.start();
    sim.run_until(5.0);
    attack::AttackerConfig acfg;
    acfg.keyspace = kChi;
    acfg.step_duration = kStep;
    acfg.probes_per_step = kOmega;
    acfg.indirect_probes_per_step = kOmega;  // greedy: gets detected
    attack::DerandAttacker attacker(sim, system.network(), acfg);
    attacker.set_indirect_channel(system.directory().proxies);
    attacker.start();
    sim.run_until(kStep * kHorizon);
    int blacklisted = 0;
    for (int i = 0; i < system.n_proxies(); ++i) {
      if (system.proxy(i).blacklisted("attacker")) ++blacklisted;
    }
    report("[4] S2/FORTRESS with proxy detection, greedy indirect attacker:",
           system, attacker.stats(), kHorizon);
    std::printf("    (attacker blacklisted by %d of %d proxies)\n",
                blacklisted, system.n_proxies());
  }

  std::printf("Takeaway: recovery alone falls to a key sweep; obfuscation "
              "resets the sweep; proxies throttle the only remaining "
              "channel and detect the source.\n");
  return 0;
}
