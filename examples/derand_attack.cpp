// derand_attack — watch a de-randomization attacker break a directly
// exposed primary-backup system (S1), then fail against the same servers
// fortified with proxies (S2) under proactive obfuscation.
//
//   $ ./derand_attack
//
// Each scenario is a declarative net::ScenarioPlan; the walkthrough runs
// one narrated trial per plan through scenario::run_trial, then replays
// the whole grid as a scenario::Campaign (many seeds in parallel) to show
// the same story statistically. The keyspace is kept small (chi = 512) so
// the attack timeline fits in a short run; all the mechanisms (probe
// pacing, crash side channel, forking daemon, launch pads,
// re-randomization) are the real ones from the paper.
#include <cstdio>
#include <vector>

#include "scenario/campaign.hpp"

using namespace fortress;

namespace {

constexpr std::uint64_t kChi = 512;
constexpr double kOmega = 16.0;
constexpr std::uint64_t kHorizon = 100;  // steps per scenario

void report(const char* label, const scenario::TrialOutcome& out,
            std::uint64_t horizon_steps) {
  std::printf("%s\n", label);
  if (out.compromised) {
    std::printf("  COMPROMISED during step %llu\n",
                static_cast<unsigned long long>(out.lifetime_steps));
  } else {
    std::printf("  survived all %llu steps\n",
                static_cast<unsigned long long>(horizon_steps));
  }
  std::printf("  attacker: %llu direct probes, %llu indirect probes, "
              "%llu crashes observed, %llu nodes compromised, %llu keys "
              "learned\n",
              static_cast<unsigned long long>(out.attacker.direct_probes),
              static_cast<unsigned long long>(out.attacker.indirect_probes),
              static_cast<unsigned long long>(out.attacker.crashes_caused),
              static_cast<unsigned long long>(out.attacker.compromises),
              static_cast<unsigned long long>(out.attacker.keys_learned));
  if (out.blacklisted_sources > 0) {
    std::printf("  detection: attacker identities blacklisted %llu times "
                "across the proxy tier\n",
                static_cast<unsigned long long>(out.blacklisted_sources));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("De-randomization attack walkthrough (chi = %llu, omega = %.0f "
              "probes/step, horizon = %llu steps)\n\n",
              static_cast<unsigned long long>(kChi), kOmega,
              static_cast<unsigned long long>(kHorizon));

  // The four scenarios as plans. Shared knobs first:
  net::ScenarioPlan base;
  base.keyspace = kChi;
  base.horizon_steps = kHorizon;
  base.attack.probes_per_step = kOmega;
  base.attack.indirect_fraction = 0.0;
  base.proxy_blacklist = false;

  // [1] S1 with proactive RECOVERY (startup-only keys).
  net::ScenarioPlan recovery = base;
  recovery.name = "s1-recovery";
  recovery.rerandomize = false;

  // [2] S1 with proactive OBFUSCATION (fresh keys every step).
  net::ScenarioPlan obfuscation = base;
  obfuscation.name = "s1-obfuscation";

  // [3] FORTRESS: attacker must go through proxies; kappa = 0.25.
  net::ScenarioPlan fortress = base;
  fortress.name = "s2-fortress";
  fortress.attack.indirect_fraction = 0.25;

  // [4] FORTRESS with detection on and a greedy (kappa = 1) attacker that
  // is indirect-only: every packet it lands traverses the proxy tier, so
  // detection sees all of its traffic (direct probes would bypass the
  // mechanism being demonstrated).
  net::ScenarioPlan detection = base;
  detection.name = "s2-detection";
  detection.attack.direct_enabled = false;
  detection.attack.indirect_fraction = 1.0;
  detection.proxy_blacklist = true;
  detection.detection_threshold = 5;

  const std::uint64_t seed = 2026;
  report("[1] S1, proactive recovery (keys fixed at startup):",
         scenario::run_trial(model::SystemKind::S1, recovery, seed), kHorizon);
  report("[2] S1, proactive obfuscation (fresh keys every step):",
         scenario::run_trial(model::SystemKind::S1, obfuscation, seed),
         kHorizon);
  report("[3] S2/FORTRESS, proactive obfuscation, kappa = 0.25:",
         scenario::run_trial(model::SystemKind::S2, fortress, seed), kHorizon);
  report("[4] S2/FORTRESS with proxy detection, greedy indirect attacker:",
         scenario::run_trial(model::SystemKind::S2, detection, seed),
         kHorizon);

  // The same grid as a campaign: every plan against its system class, many
  // seeds, fanned over the thread pool (statistics are thread-count
  // invariant).
  std::vector<scenario::CampaignCell> cells = {
      {model::SystemKind::S1, recovery},
      {model::SystemKind::S1, obfuscation},
      {model::SystemKind::S2, fortress},
      {model::SystemKind::S2, detection},
  };
  scenario::CampaignConfig cfg;
  cfg.trials_per_cell = 40;
  cfg.base_seed = 7;
  scenario::CampaignResult result = scenario::run_campaign(cells, cfg);

  std::printf("Campaign over the same grid (%llu trials/cell):\n",
              static_cast<unsigned long long>(cfg.trials_per_cell));
  std::printf("%16s %10s %12s %22s %10s\n", "plan", "system",
              "mean EL", "95% CI", "survived");
  for (const scenario::CellStats& cell : result.cells) {
    std::printf("%16s %10s %12.1f [%8.1f, %8.1f] %7llu/%llu\n",
                cell.plan_name.c_str(),
                model::to_string(cell.system).c_str(), cell.mean_lifetime(),
                cell.lifetime_ci.lo, cell.lifetime_ci.hi,
                static_cast<unsigned long long>(cell.censored),
                static_cast<unsigned long long>(cell.trials));
  }

  std::printf("\nTakeaway: recovery alone falls to a key sweep; obfuscation "
              "resets the sweep; proxies throttle the only remaining "
              "channel and detect the source.\n");
  return 0;
}
